#include "batch/planner.h"

#include <set>
#include <unordered_map>

namespace srpc::batch {

BatchPlan TxnPlanner::plan(const rc::ClusterView& view,
                           std::vector<BatchTxn> txns) {
  BatchPlan plan;
  plan.epoch = ++epoch_;
  plan.view_epoch = view.epoch;
  plan.num_shards = view.num_shards;
  plan.queues.resize(static_cast<std::size_t>(view.num_shards));
  plan.wire_reads.resize(static_cast<std::size_t>(view.num_shards));
  plan.txns.reserve(txns.size());

  // key -> batch position of the latest queued writer so far.
  std::unordered_map<std::string, std::size_t> overlay;

  for (std::size_t i = 0; i < txns.size(); ++i) {
    PlannedTxn planned;
    planned.txn = std::move(txns[i]);
    planned.txn_id = static_cast<kv::TxnId>(rc::next_txn_stamp());
    std::set<int> shards;
    std::set<std::size_t> deps;

    for (std::size_t j = 0; j < planned.txn.ops.size(); ++j) {
      const BatchOp& op = planned.txn.ops[j];
      const int shard = view.shard_of(op.key);
      shards.insert(shard);

      QueueEntry entry;
      entry.txn_pos = i;
      entry.op_pos = j;
      if (op.kind == OpKind::kRead || op.kind == OpKind::kRmw) {
        auto it = overlay.find(op.key);
        if (it != overlay.end()) {
          // Overlay read: resolved from the queued write ahead of us. A
          // read of our own earlier write is not a dependency.
          if (it->second != i) deps.insert(it->second);
        } else {
          entry.wire_read = true;
          WireRead wr;
          wr.key = op.key;
          wr.shard = shard;
          wr.pos = plan.wire_reads[static_cast<std::size_t>(shard)].size();
          wr.txn_pos = i;
          wr.op_pos = j;
          plan.wire_reads[static_cast<std::size_t>(shard)].push_back(
              std::move(wr));
        }
      }
      plan.queues[static_cast<std::size_t>(shard)].push_back(entry);
      if (op.kind == OpKind::kWrite || op.kind == OpKind::kRmw) {
        overlay[op.key] = i;
      }
    }

    planned.deps.assign(deps.begin(), deps.end());
    planned.num_shards = static_cast<int>(shards.size());
    planned.cross_partition = shards.size() > 1;
    plan.txns.push_back(std::move(planned));
  }
  return plan;
}

}  // namespace srpc::batch
