// Queue-oriented batch transactions — shared types (DESIGN.md §12).
//
// The model follows queue-oriented speculative transaction processing
// (Qadah & Sadoghi, PAPERS.md): a client pre-plans a group of transactions
// into per-partition operation queues and executes/commits them as one
// batch epoch. Three execution modes share the planner and the workload so
// benches can isolate where the win comes from:
//
//   kPerTxn2pc   — every transaction runs the classic RC path on its own:
//                  sequential quorum reads + a full commit round per txn.
//   kGroupCommit — queue-ordered sequential reads, but ONE batch-wide
//                  commit round and one group log append for all txns.
//   kSpeculative — group commit plus speculative queue execution: reads are
//                  predicted from queue-order seeds and pipeline through
//                  the SpecRPC engine's callback chains.
#pragma once

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace srpc::batch {

enum class OpKind {
  kRead,   // read `key`
  kWrite,  // blind write `key` = `value`
  kRmw,    // read `key`, write transform(current, value) back to `key`
};

/// Read-modify-write transforms. kIncrement keeps the multi-stream
/// correctness check honest: concurrent increments are lost-update-free
/// only if every committed rmw consumed a validated read.
enum class Transform { kNone, kAppend, kIncrement };

struct BatchOp {
  OpKind kind = OpKind::kRead;
  std::string key;
  std::string value;  // kWrite: the literal; kRmw: the transform operand
  Transform transform = Transform::kNone;  // kRmw only
};

/// One client transaction as produced by a workload generator. `id` is a
/// client-local sequence number for mapping results back to the stream.
struct BatchTxn {
  std::uint64_t id = 0;
  std::vector<BatchOp> ops;
};

enum class BatchMode { kPerTxn2pc, kGroupCommit, kSpeculative };

inline const char* to_string(BatchMode mode) {
  switch (mode) {
    case BatchMode::kPerTxn2pc: return "per-txn-2pc";
    case BatchMode::kGroupCommit: return "group-commit";
    case BatchMode::kSpeculative: return "speculative";
  }
  return "?";
}

inline std::string apply_transform(Transform t, const std::string& current,
                                   const std::string& operand) {
  switch (t) {
    case Transform::kAppend:
      return current + operand;
    case Transform::kIncrement: {
      // Non-numeric current (e.g. the preloaded filler value) counts as 0 —
      // the counter becomes numeric on first increment and stays honest
      // thereafter. Replay uses the same rule, so state equality holds.
      long long base = 0;
      std::from_chars(current.data(), current.data() + current.size(), base);
      long long delta = 1;
      if (!operand.empty()) {
        std::from_chars(operand.data(), operand.data() + operand.size(), delta);
      }
      return std::to_string(base + delta);
    }
    case Transform::kNone:
      break;
  }
  throw std::invalid_argument("rmw op without a transform");
}

}  // namespace srpc::batch
