// AdaptiveBatchController — online, per-client selection of the next batch
// epoch's size and commit mode (DESIGN.md §14).
//
// PR 7's batch subsystem fixes both dials for a whole run: every epoch has
// `txns_per_epoch` transactions and every client commits through one
// BatchMode. The optimal point moves with the workload — high cross-client
// conflict favours small epochs and per-transaction 2PC (coupling
// transactions into one batch round amplifies aborts through the
// dependency closure), while accurate queue-order seeds favour deep
// speculative queues with group commit (the queue pipelines to ~one RTT).
// This controller closes that loop online from signals the subsystem
// already produces, in the style of predict::AdaptiveSpeculationController:
//
//   * conflict   — per-epoch abort rate, with dependency-closure aborts
//                  counted a second time (a closure abort is an abort AND
//                  evidence that batching itself amplified it);
//   * accuracy   — queue-seed prediction accuracy, measured exactly by the
//                  QueueSeedPredictor (primed value vs validated actual);
//   * latency    — mean wire-read latency per epoch (congestion brake);
//   * pressure   — the admission ladder's level (DESIGN.md §11), so epochs
//                  stop growing while the cluster is shedding load.
//
// Two sticky gates with hysteresis pick the mode:
//
//   per-txn gate     engages when the windowed conflict signal crosses
//                    `conflict_hi`; releases after `release_streak`
//                    consecutive calm batched observations (<=
//                    `conflict_lo`). Conflict is only observable on
//                    batched epochs — per-txn 2PC serializes the stream, so
//                    its own abort counts say nothing about batch
//                    amplification — which means the releasing evidence
//                    comes from probe epochs while the gate is engaged.
//   speculation gate closes when windowed seed accuracy falls below the
//                    optmodel break-even minus `hysteresis`; reopens after
//                    `release_streak` consecutive accuracy observations
//                    above break-even plus `hysteresis` (speculative mode
//                    only pays above the misspeculation break-even
//                    accuracy, opt::break_even_accuracy).
//
//   mode = per-txn gate engaged ? kPerTxn2pc
//        : speculation gate open ? kSpeculative : kGroupCommit
//
// While a gate suppresses a mode, every `probe_every`-th epoch runs in the
// suppressed (next-more-aggressive) mode so its signals stay live and the
// gate can release — group-commit epochs prime no seeds, so without probes
// seed accuracy could never recover, and per-txn epochs carry no batch
// conflict signal at all.
//
// Epoch size follows measured epoch goodput (committed transactions per
// second of epoch wall time) with a hold-and-compare hill climber: hold the
// current size for `hold_epochs` epochs, compare the window's goodput to
// the previous window's, keep the climbing direction if it improved and
// flip it if it regressed, then take one multiplicative step (x/÷
// `grow_factor`), bouncing off the [min_epoch, max_epoch] rails. No fixed
// conflict->smaller-epochs rule survives contact with this system: commit
// rounds amortize with depth while aborted transactions are cheap, so the
// goodput-optimal size under conflict can be LARGER than in calm phases —
// the climber finds whatever the workload rewards. Conflict and pressure
// stay in the loop as fast reflexes: when the windowed conflict signal
// first crosses `shrink_above` (a regime shift, not every hot epoch) the
// size takes one immediate `shrink_factor` cut and the climber restarts
// its baseline; admission pressure does the same every epoch it sheds, and
// growth is withheld while wire reads run slower than their long-run norm
// (`latency_brake`) or pressure is nonzero.
//
// Default bands: BENCH_batch.json shows batched commit dominating per-txn
// 2PC even at high abort rates in this system (aborted work is cheap; the
// batch still pipelines), so `conflict_hi` defaults near the top of the
// closure-weighted scale — the per-txn gate is a catastrophic-conflict
// escape hatch. Likewise `misspec_cost` defaults well under 1: a failed
// seed costs roughly a redundant read re-execution, not a lost call chain.
#pragma once

#include <cstdint>
#include <mutex>

#include "batch/types.h"
#include "common/types.h"
#include "stats/ewma.h"

namespace srpc::batch {

struct AdaptiveBatchConfig {
  std::size_t min_epoch = 4;
  std::size_t max_epoch = 64;
  std::size_t initial_epoch = 16;  // clamped into [min_epoch, max_epoch]
  /// Mode used until `min_samples` epochs of signal exist.
  BatchMode initial_mode = BatchMode::kSpeculative;
  /// False on clusters without a SpecRPC engine: the speculative mode is
  /// never chosen (nor probed), leaving the per-txn/group axis only.
  bool allow_speculative = true;

  /// Mode-gate conflict band on the closure-weighted scale [0, 2]:
  /// (aborted + dep_aborts) / txns, observed on batched epochs only.
  /// Windowed mean >= hi engages the per-txn gate; `release_streak`
  /// consecutive observations <= lo release it.
  double conflict_hi = 1.3;
  double conflict_lo = 0.5;

  /// Size reflex: the windowed conflict signal crossing this from below
  /// (a regime shift) takes one immediate `shrink_factor` cut and restarts
  /// the goodput climber's baseline.
  double shrink_above = 0.35;

  /// Relative cost of one misspeculated queue position, in units of one
  /// call time — opt::break_even_accuracy(misspec_cost) centres the
  /// speculation gate's band (0.25 -> 20% accuracy).
  double misspec_cost = 0.25;
  /// Half-width of the hysteresis band around the break-even accuracy.
  double hysteresis = 0.10;

  /// EWMA weight / window (in epochs) of every signal estimator.
  double ewma_alpha = 0.3;
  std::size_t window = 8;
  /// Trust the estimators only after this many observed epochs; until then
  /// the controller stays at (initial_epoch, initial_mode).
  std::uint64_t min_samples = 3;
  /// While a gate suppresses a mode, probe it every Nth epoch (0 disables —
  /// a closed gate then never reopens).
  std::uint64_t probe_every = 6;
  /// Consecutive favourable observations needed to release a gate (calm
  /// batched epochs for per-txn, accurate seeded epochs for speculation).
  std::uint64_t release_streak = 3;

  /// Goodput climber: epochs to hold a size before comparing goodput and
  /// stepping (probe and per-txn epochs don't count — their mode skews the
  /// window, and per-txn goodput is size-insensitive).
  std::uint64_t hold_epochs = 4;
  /// Flip the climbing direction only when a window's goodput falls this
  /// fraction below the EWMA baseline — a deadband so per-window noise
  /// doesn't random-walk the size on shallow gradients.
  double climb_deadband = 0.03;
  /// Climber step up (x grow_factor) and down (÷ grow_factor);
  /// shrink_factor is the reflex cut on a conflict regime shift / shedding.
  double grow_factor = 1.3;
  double shrink_factor = 0.5;
  /// Congestion brake: no growth while the windowed wire-read latency
  /// exceeds this multiple of the long-run EWMA.
  double latency_brake = 1.5;
};

/// What one finished epoch tells the controller. `seed_checked/correct`
/// and `predictions_*` are per-epoch deltas, not cumulative counters.
struct EpochFeedback {
  BatchMode mode = BatchMode::kSpeculative;
  bool probe = false;
  std::size_t txns = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t dep_aborts = 0;   // aborted only through the closure
  std::size_t wire_reads = 0;
  Duration read_phase{};        // wall time resolving the wire reads
  Duration epoch_time{};        // wall time of the whole epoch (goodput)
  std::uint64_t seed_checked = 0;  // primed positions validated this epoch
  std::uint64_t seed_correct = 0;
  int pressure_level = 0;  // admission ladder (0 = open); caps growth
};

/// The controller's pick for the upcoming epoch.
struct BatchDecision {
  std::size_t epoch_size = 0;
  BatchMode mode = BatchMode::kSpeculative;
  bool probe = false;  // this epoch runs a suppressed mode to refresh signals
};

/// Cumulative controller counters plus a signal snapshot (RESULT lines and
/// the adaptive bench's JSON read these).
struct AdaptiveBatchStats {
  std::uint64_t epochs = 0;
  std::uint64_t mode_epochs[3] = {0, 0, 0};  // indexed by BatchMode
  std::uint64_t mode_flips = 0;              // steady-mode transitions
  std::uint64_t probes = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t accuracy_epochs = 0;  // epochs that carried seed samples
  std::size_t epoch_size = 0;       // current pick
  BatchMode mode = BatchMode::kSpeculative;  // current steady mode
  double conflict_ewma = 0;
  double conflict_windowed = 0;
  double accuracy_ewma = 0;
  double accuracy_windowed = 0;
  double read_latency_ms_ewma = 0;

  AdaptiveBatchStats& operator+=(const AdaptiveBatchStats& other);
};

class AdaptiveBatchController {
 public:
  explicit AdaptiveBatchController(AdaptiveBatchConfig config = {});

  /// The decision for the upcoming epoch. Advances the probe counter, so
  /// call exactly once per epoch (BatchClient caches it per run_epoch).
  BatchDecision next();

  /// Feeds one finished epoch back. Thread-safe against next(), though the
  /// normal cadence is strictly alternating from one client thread.
  void observe(const EpochFeedback& feedback);

  AdaptiveBatchStats stats() const;
  const AdaptiveBatchConfig& config() const { return config_; }

  /// Accuracy below/above which the speculation gate closes/reopens.
  double accuracy_off_threshold() const;
  double accuracy_on_threshold() const;

 private:
  std::size_t clamp_size(double size) const;

  AdaptiveBatchConfig config_;
  double break_even_;

  mutable std::mutex mu_;
  // Gates (sticky; see file comment for the bands).
  bool per_txn_ = false;
  bool spec_open_ = true;
  std::size_t epoch_size_;
  std::uint64_t epochs_since_probe_ = 0;

  // Signal estimators (guarded by mu_).
  stats::Ewma conflict_ewma_;
  stats::WindowedMean conflict_win_;
  stats::Ewma accuracy_ewma_;
  stats::WindowedMean accuracy_win_;
  stats::Ewma latency_ewma_;   // ms per wire read, long-run
  stats::WindowedMean latency_win_;
  std::uint64_t accuracy_epochs_ = 0;  // epochs that carried seed samples
  // Gate-release streaks: consecutive calm batched epochs (conflict <=
  // conflict_lo) and consecutive accurate seeded epochs (accuracy >= on
  // threshold). While a gate is engaged these only advance on probe epochs.
  std::uint64_t calm_streak_ = 0;
  std::uint64_t accurate_streak_ = 0;
  // Goodput hill climber (see file comment).
  int climb_dir_ = 1;
  std::uint64_t hold_count_ = 0;
  double window_committed_ = 0;
  double window_time_ms_ = 0;
  double goodput_base_ = 0;  // EWMA baseline; 0 = climber just reset
  bool conflict_regime_ = false;  // windowed signal above shrink_above?

  AdaptiveBatchStats stats_;
};

}  // namespace srpc::batch
