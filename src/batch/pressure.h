// Batch-queue pressure (DESIGN.md §12.6): per-shard queue occupancy as an
// AdmissionController PressureSource, so the PR 6 degradation ladder sheds
// best-effort speculation when batch queues back up.
//
// Occupancy is credited when a plan is cut (every queued op of the epoch)
// and released when the epoch's decide round is out — i.e. the gauge tracks
// planned-but-undecided operations across all clients sharing the gauge.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "batch/planner.h"
#include "predict/admission.h"
#include "rc/common.h"

namespace srpc::batch {

class BatchQueueGauge {
 public:
  /// Sized for every addressable shard (spares included), so plans cut
  /// under post-migration views still credit in range.
  explicit BatchQueueGauge(int num_shards)
      : depth_(static_cast<std::size_t>(num_shards)) {}

  void on_plan(const BatchPlan& plan) {
    const std::size_t n = std::min(depth_.size(), plan.queues.size());
    for (std::size_t s = 0; s < n; ++s) {
      depth_[s].fetch_add(plan.queues[s].size(), std::memory_order_relaxed);
    }
  }
  void on_complete(const BatchPlan& plan) {
    const std::size_t n = std::min(depth_.size(), plan.queues.size());
    for (std::size_t s = 0; s < n; ++s) {
      depth_[s].fetch_sub(plan.queues[s].size(), std::memory_order_relaxed);
    }
  }

  std::size_t shard_depth(int shard) const {
    return depth_.at(static_cast<std::size_t>(shard))
        .load(std::memory_order_relaxed);
  }
  std::size_t total() const {
    std::size_t n = 0;
    for (const auto& d : depth_) n += d.load(std::memory_order_relaxed);
    return n;
  }

 private:
  std::vector<std::atomic<std::size_t>> depth_;
};

/// The gauge as an admission pressure source; the shared_ptr keeps it alive
/// for as long as the controller polls.
inline predict::PressureSource batch_pressure_source(
    std::shared_ptr<BatchQueueGauge> gauge) {
  return [gauge] {
    predict::PressureSample s;
    s.queue_depth = gauge->total();
    return s;
  };
}

}  // namespace srpc::batch
