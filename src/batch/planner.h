// TxnPlanner — decomposes a group of transactions into per-partition
// operation queues and assigns them one batch epoch (DESIGN.md §12.1).
//
// Planning is deterministic and purely client-local: operations are routed
// to queues by the shard map of the ClusterView the epoch is planned
// under (the plan records that view's epoch and shard count, so the commit
// round can stamp its RPCs and servers can NACK a stale plan); reads are
// classified as *wire* reads
// (no earlier writer in the batch — they need a store RPC) or *overlay*
// reads (some earlier transaction in the batch writes the key — resolved
// client-side from the queued write, no RPC and no store validation, with
// the read-write edge recorded as a dependency so the commit round can
// abort dependents of aborted transactions transitively).
#pragma once

#include <cstdint>
#include <vector>

#include "batch/types.h"
#include "rc/common.h"
#include "rc/view.h"

namespace srpc::batch {

/// One slot of a per-partition operation queue.
struct QueueEntry {
  std::size_t txn_pos = 0;  // index into BatchPlan::txns (batch order)
  std::size_t op_pos = 0;   // index into that txn's ops
  bool wire_read = false;   // true: a store read RPC backs this slot
};

/// One read RPC of the batch: shard queue slot -> key. `pos` is the
/// ordinal among the shard's wire reads and is part of the batch.read args,
/// giving every queue position a unique predictor key.
struct WireRead {
  std::string key;
  int shard = 0;
  std::size_t pos = 0;
  std::size_t txn_pos = 0;
  std::size_t op_pos = 0;
};

struct PlannedTxn {
  BatchTxn txn;
  kv::TxnId txn_id = 0;  // globally stamped; commit version = 1e9 + txn_id
  /// Batch positions of earlier transactions whose queued writes this one
  /// reads (overlay reads). If any of them aborts, this one must too.
  std::vector<std::size_t> deps;
  bool cross_partition = false;  // ops straddle >= 2 shard queues
  int num_shards = 0;
};

struct BatchPlan {
  std::uint64_t epoch = 0;
  /// Epoch of the ClusterView the plan was routed under — stamped on every
  /// batch RPC so servers on a newer view NACK instead of misrouting.
  std::int64_t view_epoch = 0;
  int num_shards = 0;
  std::vector<PlannedTxn> txns;  // batch order
  std::vector<std::vector<QueueEntry>> queues;    // one per shard
  std::vector<std::vector<WireRead>> wire_reads;  // one per shard

  std::size_t queue_ops() const {
    std::size_t n = 0;
    for (const auto& q : queues) n += q.size();
    return n;
  }
  std::size_t total_wire_reads() const {
    std::size_t n = 0;
    for (const auto& w : wire_reads) n += w.size();
    return n;
  }
};

class TxnPlanner {
 public:
  /// Plans one epoch under `view`'s shard map. Stamps every transaction
  /// with a global txn id (in batch order, so commit versions increase
  /// along the batch) and increments the epoch counter.
  BatchPlan plan(const rc::ClusterView& view, std::vector<BatchTxn> txns);

  std::uint64_t epochs() const { return epoch_; }

 private:
  std::uint64_t epoch_ = 0;
};

}  // namespace srpc::batch
