#include "batch/adaptive.h"

#include <algorithm>
#include <cmath>

#include "optmodel/model.h"

namespace srpc::batch {

namespace {

int mode_index(BatchMode mode) { return static_cast<int>(mode); }

double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

AdaptiveBatchStats& AdaptiveBatchStats::operator+=(
    const AdaptiveBatchStats& other) {
  epochs += other.epochs;
  for (int m = 0; m < 3; ++m) mode_epochs[m] += other.mode_epochs[m];
  mode_flips += other.mode_flips;
  probes += other.probes;
  grows += other.grows;
  shrinks += other.shrinks;
  accuracy_epochs += other.accuracy_epochs;
  // Gauges aggregate as "a representative controller": the busiest one wins
  // (summing a size or a rate across clients would mean nothing).
  if (other.epochs > 0) {
    epoch_size = other.epoch_size;
    mode = other.mode;
    conflict_ewma = other.conflict_ewma;
    conflict_windowed = other.conflict_windowed;
    accuracy_ewma = other.accuracy_ewma;
    accuracy_windowed = other.accuracy_windowed;
    read_latency_ms_ewma = other.read_latency_ms_ewma;
  }
  return *this;
}

AdaptiveBatchController::AdaptiveBatchController(AdaptiveBatchConfig config)
    : config_(config),
      break_even_(opt::break_even_accuracy(config.misspec_cost)),
      conflict_ewma_(config.ewma_alpha),
      conflict_win_(config.window),
      accuracy_ewma_(config.ewma_alpha),
      accuracy_win_(config.window),
      latency_ewma_(config.ewma_alpha),
      latency_win_(config.window) {
  config_.max_epoch = std::max(config_.max_epoch, config_.min_epoch);
  epoch_size_ = std::clamp(config_.initial_epoch, config_.min_epoch,
                           config_.max_epoch);
  // The initial mode seeds the gates; they move once signals warm up.
  per_txn_ = config_.initial_mode == BatchMode::kPerTxn2pc;
  spec_open_ = config_.allow_speculative &&
               config_.initial_mode == BatchMode::kSpeculative;
}

double AdaptiveBatchController::accuracy_off_threshold() const {
  return break_even_ - config_.hysteresis;
}

double AdaptiveBatchController::accuracy_on_threshold() const {
  return break_even_ + config_.hysteresis;
}

std::size_t AdaptiveBatchController::clamp_size(double size) const {
  const auto rounded = static_cast<std::size_t>(std::llround(size));
  return std::clamp(rounded, config_.min_epoch, config_.max_epoch);
}

BatchDecision AdaptiveBatchController::next() {
  std::lock_guard<std::mutex> lock(mu_);
  const BatchMode steady =
      per_txn_ ? BatchMode::kPerTxn2pc
               : (spec_open_ && config_.allow_speculative
                      ? BatchMode::kSpeculative
                      : BatchMode::kGroupCommit);
  BatchDecision decision;
  decision.epoch_size = epoch_size_;
  decision.mode = steady;

  // Probe the suppressed next-more-aggressive mode so its signals stay
  // live: group commit while the per-txn gate is engaged (does conflict
  // still bite batched epochs?), speculative while the accuracy gate is
  // closed (group epochs prime no seeds, so accuracy can only recover
  // through a probe).
  BatchMode probe_target = steady;
  if (per_txn_) {
    probe_target = BatchMode::kGroupCommit;
  } else if (!spec_open_ && config_.allow_speculative) {
    probe_target = BatchMode::kSpeculative;
  }
  if (probe_target != steady && config_.probe_every > 0 &&
      stats_.epochs >= config_.min_samples) {
    if (++epochs_since_probe_ >= config_.probe_every) {
      epochs_since_probe_ = 0;
      decision.mode = probe_target;
      decision.probe = true;
    }
  } else {
    epochs_since_probe_ = 0;
  }
  return decision;
}

void AdaptiveBatchController::observe(const EpochFeedback& feedback) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.epochs++;
  stats_.mode_epochs[mode_index(feedback.mode)]++;
  if (feedback.probe) stats_.probes++;

  // Conflict: closure aborts count twice — once as aborts, once as
  // evidence that coupling transactions into a batch amplified them. Only
  // batched epochs carry the signal: per-txn 2PC serializes the stream, so
  // its abort counts say nothing about batch amplification, and feeding its
  // near-zero rates here would release the gate blindly.
  const bool batched = feedback.mode != BatchMode::kPerTxn2pc;
  double epoch_conflict = 0.0;
  bool saw_conflict = false;
  if (batched && feedback.txns > 0) {
    epoch_conflict = static_cast<double>(feedback.aborted +
                                         feedback.dep_aborts) /
                     static_cast<double>(feedback.txns);
    saw_conflict = true;
    conflict_ewma_.observe(epoch_conflict);
    conflict_win_.observe(epoch_conflict);
    if (epoch_conflict <= config_.conflict_lo) {
      calm_streak_++;
    } else {
      calm_streak_ = 0;
    }
  }
  if (feedback.seed_checked > 0) {
    const double accuracy = static_cast<double>(feedback.seed_correct) /
                            static_cast<double>(feedback.seed_checked);
    accuracy_ewma_.observe(accuracy);
    accuracy_win_.observe(accuracy);
    accuracy_epochs_++;
    if (accuracy >= accuracy_on_threshold()) {
      accurate_streak_++;
    } else {
      accurate_streak_ = 0;
    }
  }
  if (feedback.wire_reads > 0) {
    const double ms_per_read =
        to_ms(feedback.read_phase) / static_cast<double>(feedback.wire_reads);
    latency_ewma_.observe(ms_per_read);
    latency_win_.observe(ms_per_read);
  }

  if (stats_.epochs < config_.min_samples) return;  // still warming up

  const auto steady_mode = [this] {
    return per_txn_ ? BatchMode::kPerTxn2pc
                    : (spec_open_ && config_.allow_speculative
                           ? BatchMode::kSpeculative
                           : BatchMode::kGroupCommit);
  };
  const BatchMode before = steady_mode();

  // Per-txn gate: the windowed signal (fully forgetting) engages it at full
  // strength; release takes `release_streak` consecutive calm batched
  // observations — while engaged, only probe epochs can supply them, so the
  // gate stays put until probes prove the storm is over.
  if (!per_txn_ && conflict_win_.mean() >= config_.conflict_hi) {
    per_txn_ = true;
    calm_streak_ = 0;
  } else if (per_txn_ && calm_streak_ >= config_.release_streak) {
    per_txn_ = false;
  }

  // Speculation gate around the optmodel break-even (speculative mode only
  // pays above it): closes on the windowed mean like the PR 3 accuracy
  // gate, reopens on a streak of accurate probes.
  if (config_.allow_speculative && accuracy_epochs_ >= config_.min_samples) {
    if (spec_open_ && accuracy_win_.mean() < accuracy_off_threshold()) {
      spec_open_ = false;
      accurate_streak_ = 0;
    } else if (!spec_open_ && accurate_streak_ >= config_.release_streak) {
      spec_open_ = true;
    }
  }
  if (steady_mode() != before) stats_.mode_flips++;

  // ---- Epoch size ----
  const auto reflex_shrink = [this] {
    const std::size_t next =
        clamp_size(static_cast<double>(epoch_size_) * config_.shrink_factor);
    if (next < epoch_size_) {
      epoch_size_ = next;
      stats_.shrinks++;
    }
    // Restart the climber: the regime changed, so the old goodput baseline
    // compares apples to oranges.
    goodput_base_ = 0;
    hold_count_ = 0;
    window_committed_ = 0;
    window_time_ms_ = 0;
    climb_dir_ = 1;
  };

  // Reflexes first: one cut when the windowed conflict signal crosses
  // shrink_above from below (a regime shift, not every hot epoch), a cut
  // every epoch the admission ladder sheds.
  bool reflexed = false;
  if (saw_conflict) {
    const bool hot = conflict_win_.mean() >= config_.shrink_above;
    if (hot && !conflict_regime_) {
      reflex_shrink();
      reflexed = true;
    }
    conflict_regime_ = hot;
  }
  if (feedback.pressure_level > 0) {
    reflex_shrink();
    reflexed = true;
  }

  // Goodput hill climber: hold the size for hold_epochs batched non-probe
  // epochs, then flip the climbing direction when the window's goodput
  // falls a deadband below the EWMA baseline (keep it otherwise), and take
  // one multiplicative step. The congestion brake and pressure withhold
  // growth steps. Per-txn epochs are excluded: their goodput barely moves
  // with size, so climbing on them is a random walk — the size freezes at
  // the last batched optimum until the gate releases.
  if (!reflexed && !feedback.probe && batched && feedback.txns > 0) {
    window_committed_ += static_cast<double>(feedback.committed);
    window_time_ms_ += to_ms(feedback.epoch_time);
    if (++hold_count_ >= config_.hold_epochs && window_time_ms_ > 0) {
      const double goodput = window_committed_ / window_time_ms_;
      if (goodput_base_ > 0 &&
          goodput < goodput_base_ * (1.0 - config_.climb_deadband)) {
        climb_dir_ = -climb_dir_;
      }
      goodput_base_ = goodput_base_ > 0
                          ? (1.0 - config_.ewma_alpha) * goodput_base_ +
                                config_.ewma_alpha * goodput
                          : goodput;
      hold_count_ = 0;
      window_committed_ = 0;
      window_time_ms_ = 0;

      const bool congested =
          latency_win_.occupied() > 0 &&
          latency_win_.mean() >
              config_.latency_brake * latency_ewma_.value(latency_win_.mean());
      const bool grow_blocked = congested || feedback.pressure_level > 0;
      if (climb_dir_ > 0 && !grow_blocked) {
        const std::size_t next = clamp_size(std::max(
            static_cast<double>(epoch_size_ + 1),
            static_cast<double>(epoch_size_) * config_.grow_factor));
        if (next > epoch_size_) {
          epoch_size_ = next;
          stats_.grows++;
        } else {
          climb_dir_ = -1;  // bounced off max_epoch
        }
      } else if (climb_dir_ < 0) {
        const std::size_t next = clamp_size(std::min(
            static_cast<double>(epoch_size_) - 1,
            static_cast<double>(epoch_size_) / config_.grow_factor));
        if (next < epoch_size_) {
          epoch_size_ = next;
          stats_.shrinks++;
        } else {
          climb_dir_ = 1;  // bounced off min_epoch
        }
      }
    }
  }
}

AdaptiveBatchStats AdaptiveBatchController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdaptiveBatchStats out = stats_;
  out.accuracy_epochs = accuracy_epochs_;
  out.epoch_size = epoch_size_;
  out.mode = per_txn_ ? BatchMode::kPerTxn2pc
                      : (spec_open_ && config_.allow_speculative
                             ? BatchMode::kSpeculative
                             : BatchMode::kGroupCommit);
  out.conflict_ewma = conflict_ewma_.value();
  out.conflict_windowed = conflict_win_.mean();
  out.accuracy_ewma = accuracy_ewma_.value();
  out.accuracy_windowed = accuracy_win_.mean();
  out.read_latency_ms_ewma = latency_ewma_.value();
  return out;
}

}  // namespace srpc::batch
