#include "batch/client.h"

#include <condition_variable>
#include <map>
#include <mutex>

#include "common/executor.h"

namespace srpc::batch {

namespace {
/// Commit versions sit above every preloaded version, mirroring the rc
/// per-txn convention (commit_version = txn + 1e9); batch and per-txn
/// transactions therefore share one version space.
constexpr std::int64_t kVersionBase = 1'000'000'000;
/// Re-plans after a wrong-epoch NACK before giving up on the epoch. One
/// refresh normally suffices (the NACK carries the new view); the bound
/// protects against a reconfiguration storm.
constexpr int kMaxViewRetries = 3;
}  // namespace

BatchClient::BatchClient(rc::RpcKit& kit,
                         std::shared_ptr<rc::ViewProvider> views,
                         BatchClientConfig config,
                         std::shared_ptr<SeedStore> seeds,
                         std::shared_ptr<QueueSeedPredictor> predictor,
                         std::shared_ptr<BatchQueueGauge> gauge)
    : kit_(kit),
      views_(views),
      config_(config),
      seeds_(std::move(seeds)),
      predictor_(std::move(predictor)),
      gauge_(std::move(gauge)),
      executor_(kit, std::move(views), config.my_dc, config.read_quorum,
                seeds_) {}

void BatchClient::refresh_view(const rc::WrongEpochError& err) {
  stats_.view_refreshes.fetch_add(1, std::memory_order_relaxed);
  if (err.view().has_value()) {
    // Diff the slot tables before installing: only seeds whose slots moved
    // between the two views are stale (a migration must not cold-start
    // seed accuracy for the untouched rest of the key space).
    const View old_view = views_->get();
    views_->install(*err.view());
    if (seeds_ != nullptr) seeds_->invalidate_moved(*old_view, *err.view());
  } else if (seeds_ != nullptr) {
    seeds_->clear();  // no view payload: can't tell what moved
  }
}

std::size_t BatchClient::next_epoch_size() {
  if (controller_ == nullptr) return config_.txns_per_epoch;
  if (!pending_decision_.has_value()) pending_decision_ = controller_->next();
  return pending_decision_->epoch_size;
}

BatchClient::StatsSnapshot BatchClient::snapshot_counters() const {
  StatsSnapshot snap;
  snap.dep_aborts = stats_.dep_aborts.load(std::memory_order_relaxed);
  snap.wire_reads = stats_.wire_reads.load(std::memory_order_relaxed);
  if (predictor_ != nullptr) {
    snap.seed_checked = predictor_->checked();
    snap.seed_correct = predictor_->correct();
  }
  return snap;
}

void BatchClient::feed_controller(const BatchDecision& decision,
                                  const EpochResult& result,
                                  const StatsSnapshot& before,
                                  Duration epoch_time) {
  const StatsSnapshot after = snapshot_counters();
  EpochFeedback feedback;
  feedback.mode = decision.mode;
  feedback.probe = decision.probe;
  feedback.epoch_time = epoch_time;
  feedback.txns = result.committed + result.aborted;
  feedback.committed = result.committed;
  feedback.aborted = result.aborted;
  feedback.dep_aborts =
      static_cast<std::size_t>(after.dep_aborts - before.dep_aborts);
  feedback.wire_reads =
      static_cast<std::size_t>(after.wire_reads - before.wire_reads);
  feedback.read_phase = result.read_phase;
  feedback.seed_checked = after.seed_checked - before.seed_checked;
  feedback.seed_correct = after.seed_correct - before.seed_correct;
  feedback.pressure_level =
      admission_ != nullptr ? static_cast<int>(admission_->level()) : 0;
  controller_->observe(feedback);
}

EpochResult BatchClient::run_epoch(std::vector<BatchTxn> txns) {
  // The controller's decision holds for the whole epoch, across wrong-epoch
  // re-plans (a view refresh changes routing, not the workload signals the
  // decision was made from).
  std::optional<BatchDecision> decision;
  if (controller_ != nullptr) {
    if (!pending_decision_.has_value()) pending_decision_ = controller_->next();
    decision = pending_decision_;
    pending_decision_.reset();
  }
  const BatchMode mode = decision.has_value() ? decision->mode : config_.mode;
  const StatsSnapshot before = snapshot_counters();
  const TimePoint epoch_start = Clock::now();
  for (int attempt = 0;; ++attempt) {
    // Plan under the freshest view; the plan carries that view's epoch and
    // every RPC of the epoch is stamped with it.
    const View view = views_->get();
    const BatchPlan plan = planner_.plan(*view, txns);
    if (gauge_ != nullptr) gauge_->on_plan(plan);
    try {
      EpochResult result = mode == BatchMode::kPerTxn2pc
                               ? run_per_txn(plan, view)
                               : run_batched(plan, view, mode);
      result.mode = mode;
      if (gauge_ != nullptr) gauge_->on_complete(plan);
      stats_.epochs.fetch_add(1, std::memory_order_relaxed);
      stats_.committed.fetch_add(result.committed, std::memory_order_relaxed);
      stats_.aborted.fetch_add(result.aborted, std::memory_order_relaxed);
      if (decision.has_value()) {
        feed_controller(*decision, result, before, Clock::now() - epoch_start);
      }
      return result;
    } catch (const rc::WrongEpochError& err) {
      // Thrown only before anything of this epoch committed (reads, or a
      // commit round that aborted every transaction), so a full re-plan
      // cannot double-apply.
      if (gauge_ != nullptr) gauge_->on_complete(plan);
      refresh_view(err);
      if (attempt >= kMaxViewRetries) {
        EpochResult result;
        result.epoch = plan.epoch;
        result.mode = mode;
        result.aborted = plan.txns.size();
        result.decisions.assign(plan.txns.size(), false);
        stats_.epochs.fetch_add(1, std::memory_order_relaxed);
        stats_.aborted.fetch_add(result.aborted, std::memory_order_relaxed);
        if (decision.has_value()) {
          feed_controller(*decision, result, before,
                          Clock::now() - epoch_start);
        }
        return result;
      }
    }
  }
}

void BatchClient::prime_predictions(const BatchPlan& plan) {
  if (predictor_ == nullptr || seeds_ == nullptr) return;
  predictor_->begin_epoch();
  for (int shard = 0; shard < plan.num_shards; ++shard) {
    for (const auto& wr : plan.wire_reads[static_cast<std::size_t>(shard)]) {
      auto seed = seeds_->get(wr.key);
      if (!seed.has_value()) continue;  // cold key: the call runs unpredicted
      // Must mirror the executor's read_args exactly — the predictor key
      // hashes (method, args), vepoch included.
      ValueList args;
      args.reserve(5);
      args.emplace_back(wr.key);
      args.emplace_back(static_cast<std::int64_t>(plan.epoch));
      args.emplace_back(static_cast<std::int64_t>(wr.shard));
      args.emplace_back(static_cast<std::int64_t>(wr.pos));
      args.emplace_back(plan.view_epoch);
      predictor_->prime(rc::kBatchRead, args,
                        vlist(seed->value, seed->version));
    }
  }
}

std::vector<BatchClient::ComputedTxn> BatchClient::compute(
    const BatchPlan& plan, const ReadSet& reads) {
  std::vector<ComputedTxn> out(plan.txns.size());
  std::map<std::string, std::string> view;  // queued writes so far
  std::uint64_t wire = 0;
  std::uint64_t overlay = 0;
  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    const PlannedTxn& planned = plan.txns[i];
    ComputedTxn& txn = out[i];
    std::map<std::string, std::string> buffer;  // own writes, last wins
    for (std::size_t j = 0; j < planned.txn.ops.size(); ++j) {
      const BatchOp& op = planned.txn.ops[j];
      if (op.kind == OpKind::kWrite) {
        buffer[op.key] = op.value;
        continue;
      }
      // kRead / kRmw: resolve the current value in queue order — own buffer
      // first, then the wire read (validated at prepare), then the overlay
      // of queued writes ahead of us (dependency-closed, not validated).
      std::string current;
      auto bit = buffer.find(op.key);
      if (bit != buffer.end()) {
        current = bit->second;
        overlay++;
      } else if (auto rit = reads.find({i, j}); rit != reads.end()) {
        current = rit->second.value;
        txn.validations.push_back(
            kv::ReadValidation{op.key, rit->second.version});
        wire++;
      } else {
        current = view.at(op.key);  // planner guarantees an earlier writer
        overlay++;
      }
      if (op.kind == OpKind::kRmw) {
        buffer[op.key] = apply_transform(op.transform, current, op.value);
      }
    }
    txn.writes.reserve(buffer.size());
    for (auto& [key, value] : buffer) {
      txn.writes.push_back(kv::WriteOp{key, value});
      view[key] = value;
    }
  }
  stats_.wire_reads.fetch_add(wire, std::memory_order_relaxed);
  stats_.overlay_reads.fetch_add(overlay, std::memory_order_relaxed);
  return out;
}

EpochResult BatchClient::run_batched(const BatchPlan& plan, const View& view,
                                     BatchMode mode) {
  const TimePoint t0 = Clock::now();
  EpochResult result;
  result.epoch = plan.epoch;
  if (plan.txns.empty()) return result;

  if (mode == BatchMode::kSpeculative) prime_predictions(plan);
  const ReadSet reads = executor_.execute(plan, mode, view);
  result.read_phase = Clock::now() - t0;
  const auto computed = compute(plan, reads);

  std::vector<kv::BatchEntry> entries;
  entries.reserve(computed.size());
  for (std::size_t i = 0; i < computed.size(); ++i) {
    kv::BatchEntry e;
    e.txn = plan.txns[i].txn_id;
    e.index = i;
    e.reads = computed[i].validations;
    e.writes = computed[i].writes;
    entries.push_back(std::move(e));
  }

  // One batch-wide commit round: the whole batch to every DC coordinator,
  // per-transaction votes tallied to a majority each.
  const TimePoint t1 = Clock::now();
  const auto batch_id = static_cast<kv::TxnId>(rc::next_txn_stamp());
  const std::size_t n = entries.size();
  struct VoteState {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> yes, no;
    std::string epoch_error;  // first wrong-epoch NACK, if any
  };
  auto votes = std::make_shared<VoteState>();
  votes->yes.assign(n, 0);
  votes->no.assign(n, 0);
  const int num_dcs = view->num_dcs;
  const int quorum = config_.vote_quorum;
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(static_cast<std::int64_t>(batch_id));
    args.push_back(rc::encode_batch_entries(entries));
    args.emplace_back(view->epoch);
    auto future =
        kit_.call(view->coord_addr(dc), rc::kBatchCommit, std::move(args));
    future->then([votes, n](const rc::Outcome& outcome) {
      std::lock_guard<std::mutex> lock(votes->mu);
      std::vector<bool> flags;
      if (outcome.ok) flags = rc::decode_batch_flags(outcome.value);
      if (!outcome.ok && rc::is_wrong_epoch(outcome.error) &&
          votes->epoch_error.empty()) {
        votes->epoch_error = outcome.error;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (outcome.ok && i < flags.size() && flags[i]) {
          votes->yes[i]++;
        } else {
          votes->no[i]++;
        }
      }
      votes->cv.notify_all();
    });
  }
  {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(votes->mu);
    votes->cv.wait(lock, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        if (votes->yes[i] < quorum && votes->no[i] <= num_dcs - quorum) {
          return false;
        }
      }
      return true;
    });
  }
  std::vector<bool> voted(n, false);
  std::string epoch_error;
  {
    std::lock_guard<std::mutex> lock(votes->mu);
    for (std::size_t i = 0; i < n; ++i) voted[i] = votes->yes[i] >= quorum;
    epoch_error = votes->epoch_error;
  }

  // Dependency closure, in batch order: a transaction whose overlay read
  // came from an aborted transaction aborts too (transitive, since deps
  // only point backwards).
  result.decisions.assign(n, false);
  bool any_committed = false;
  for (std::size_t i = 0; i < n; ++i) {
    bool ok = voted[i];
    for (const std::size_t dep : plan.txns[i].deps) {
      if (!result.decisions[dep]) ok = false;
    }
    result.decisions[i] = ok;
    any_committed = any_committed || ok;
    if (voted[i] && !ok) {
      stats_.dep_aborts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  result.commit_phase = Clock::now() - t1;

  // Decide broadcast (asynchronous, off the latency path) — every DC
  // applies the decided writes and releases the batch locks. Stamped with
  // the planning epoch for union routing on the far side (the batch
  // resolves in the epoch that prepared it; migrated writes also land at
  // their current owners).
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(static_cast<std::int64_t>(batch_id));
    args.emplace_back(true);
    args.push_back(rc::encode_batch_entries(entries));
    args.push_back(rc::encode_batch_flags(result.decisions));
    args.emplace_back(kVersionBase);
    args.emplace_back(view->epoch);
    kit_.call(view->coord_addr(dc), rc::kBatchDecide, std::move(args));
  }

  // A wrong-epoch NACK that aborted the whole batch is retryable — locks
  // are released by the decide(all-false) broadcast above, nothing was
  // applied, so run_epoch can safely re-plan under the refreshed view. If
  // anything committed, install the newer view quietly and move on.
  if (!epoch_error.empty()) {
    if (!any_committed) {
      throw rc::WrongEpochError(rc::parse_wrong_epoch(epoch_error));
    }
    auto next = rc::parse_wrong_epoch(epoch_error);
    if (next.has_value()) views_->install(*next);
  }

  // Committed writes become next epoch's seeds, at their exact commit
  // versions (the engine validates predictions by deep (value, version)
  // equality, so approximate versions would never validate).
  if (seeds_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!result.decisions[i]) continue;
      const std::int64_t version =
          kVersionBase + static_cast<std::int64_t>(entries[i].txn);
      for (const auto& w : entries[i].writes) {
        seeds_->put(w.key, w.value, version);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (result.decisions[i]) {
      result.committed++;
    } else {
      result.aborted++;
    }
  }
  result.total = Clock::now() - t0;
  return result;
}

EpochResult BatchClient::run_per_txn(const BatchPlan& plan, const View& view) {
  const TimePoint t0 = Clock::now();
  EpochResult result;
  result.epoch = plan.epoch;
  result.decisions.assign(plan.txns.size(), false);
  // The per-txn baseline refreshes the view per transaction: earlier
  // transactions of the epoch may already have committed, so a wrong-epoch
  // NACK must never replay the whole epoch — it retries just the
  // transaction that hit it, under the refreshed view.
  View cur = view;
  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    const PlannedTxn& planned = plan.txns[i];
    bool committed = false;
    for (int attempt = 0; attempt <= kMaxViewRetries; ++attempt) {
      try {
        std::map<std::string, std::string> buffer;
        std::vector<kv::ReadValidation> validations;
        std::size_t read_seq = 0;
        for (const BatchOp& op : planned.txn.ops) {
          if (op.kind == OpKind::kWrite) {
            buffer[op.key] = op.value;
            continue;
          }
          std::string current;
          auto bit = buffer.find(op.key);
          if (bit != buffer.end()) {
            current = bit->second;  // read-your-own-write, no validation
          } else {
            // Fresh quorum read, sequential — the per-txn baseline pays one
            // round trip per read and one commit round per transaction.
            const TimePoint r0 = Clock::now();
            const auto r = executor_.quorum_read(
                *cur, op.key, plan.epoch, cur->shard_of(op.key), read_seq++);
            result.read_phase += Clock::now() - r0;
            current = r.value;
            validations.push_back(kv::ReadValidation{op.key, r.version});
            stats_.wire_reads.fetch_add(1, std::memory_order_relaxed);
          }
          if (op.kind == OpKind::kRmw) {
            buffer[op.key] = apply_transform(op.transform, current, op.value);
          }
        }
        std::vector<kv::WriteOp> writes;
        writes.reserve(buffer.size());
        for (auto& [key, value] : buffer) {
          writes.push_back(kv::WriteOp{key, value});
        }
        committed = writes.empty() ||
                    commit_single(*cur, planned.txn_id, validations, writes);
        if (committed && seeds_ != nullptr && !writes.empty()) {
          const std::int64_t version =
              kVersionBase + static_cast<std::int64_t>(planned.txn_id);
          for (const auto& w : writes) seeds_->put(w.key, w.value, version);
        }
        break;
      } catch (const rc::WrongEpochError& err) {
        refresh_view(err);
        cur = views_->get();
        if (attempt >= kMaxViewRetries) break;  // counts as an abort
      }
    }
    result.decisions[i] = committed;
    if (committed) {
      result.committed++;
    } else {
      result.aborted++;
    }
  }
  result.total = Clock::now() - t0;
  return result;
}

bool BatchClient::commit_single(
    const rc::ClusterView& view, kv::TxnId txn_id,
    const std::vector<kv::ReadValidation>& validations,
    const std::vector<kv::WriteOp>& writes) {
  const auto txn = static_cast<std::int64_t>(txn_id);
  const std::int64_t commit_version = txn + kVersionBase;
  struct VoteState {
    std::mutex mu;
    std::condition_variable cv;
    int yes = 0;
    int no = 0;
    std::string epoch_error;
  };
  auto votes = std::make_shared<VoteState>();
  const int num_dcs = view.num_dcs;
  const int quorum = config_.vote_quorum;
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.push_back(rc::encode_reads(validations));
    args.push_back(rc::encode_writes(writes));
    args.emplace_back(view.epoch);
    auto future =
        kit_.call(view.coord_addr(dc), rc::kCommit, std::move(args));
    future->then([votes](const rc::Outcome& outcome) {
      std::lock_guard<std::mutex> lock(votes->mu);
      if (outcome.ok && outcome.value.as_bool()) {
        votes->yes++;
      } else {
        if (!outcome.ok && rc::is_wrong_epoch(outcome.error) &&
            votes->epoch_error.empty()) {
          votes->epoch_error = outcome.error;
        }
        votes->no++;
      }
      votes->cv.notify_all();
    });
  }
  bool committed;
  std::string epoch_error;
  {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(votes->mu);
    votes->cv.wait(lock, [&] {
      return votes->yes >= quorum || votes->no > num_dcs - quorum;
    });
    committed = votes->yes >= quorum;
    epoch_error = votes->epoch_error;
  }
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.emplace_back(committed);
    args.push_back(rc::encode_writes(writes));
    args.emplace_back(commit_version);
    args.push_back(rc::encode_reads(validations));
    args.emplace_back(view.epoch);
    kit_.call(view.coord_addr(dc), rc::kDecide, std::move(args));
  }
  // The decide(abort) broadcast above released any prepared locks, so the
  // caller may retry this transaction under the refreshed view.
  if (!committed && !epoch_error.empty()) {
    throw rc::WrongEpochError(rc::parse_wrong_epoch(epoch_error));
  }
  return committed;
}

}  // namespace srpc::batch
