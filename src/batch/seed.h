// Queue-order prediction seeding (DESIGN.md §12.3).
//
// SeedStore is the client-local cache of (value, version) pairs the planner
// seeds read predictions from: committed batch writes land here with their
// exact commit versions, and every validated read refreshes its key. The
// SpecRPC engine validates predictions by deep equality against the quorum
// combiner's vlist(value, version), so seeds must carry exact versions —
// a right value at a stale version is still a misprediction.
//
// Puts from a speculative context (the executor's chain callbacks refresh
// seeds as reads resolve) register a rollback with the engine, SideTable
// style: if the branch is abandoned, the previous seed is restored, so the
// cache only keeps state from surviving branches. The store is advisory —
// a stale seed costs one misprediction, never correctness — which is why a
// lock-striped last-writer-wins cache is enough here while authoritative
// execution state lives in callback captures (DESIGN.md §12.5).
//
// QueueSeedPredictor is the predict::Predictor that carries those seeds
// through the standard PredictionSupplier hook: the planner primes it per
// queue position (batch.read args are (key, epoch, shard, pos), so every
// position gets a distinct predictor key), the engine's supplier consults
// it like any other predictor — budget, admission and accuracy tracking
// from PRs 3/6 apply unchanged — and learn() writes actuals back into the
// SeedStore.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "predict/predictor.h"
#include "rc/view.h"
#include "specrpc/engine.h"

namespace srpc::batch {

struct SeedValue {
  std::string value;
  std::int64_t version = 0;
};

class SeedStore {
 public:
  SeedStore() = default;

  /// Late-binds the engine whose speculative contexts should get rollback
  /// protection (the engine is constructed after the store, which the
  /// prediction hooks must capture). Wire before traffic; nullptr is fine
  /// (plain writes, e.g. non-speculative modes).
  void attach_engine(spec::SpecEngine* engine) { engine_ = engine; }

  /// Version-monotone upsert: an older version never clobbers a newer one.
  /// From a speculative context, registers a rollback restoring the prior
  /// seed if this branch is abandoned (guarded by the written version, so a
  /// late rollback cannot clobber a newer non-speculative put).
  void put(const std::string& key, std::string value, std::int64_t version);

  std::optional<SeedValue> get(const std::string& key) const;
  std::size_t size() const;

  /// Drops every seed. Last resort on a view change whose predecessor is
  /// unknown (see invalidate_moved for the surgical path). Advisory store,
  /// so racing in-flight puts are harmless.
  void clear();

  /// Drops only the seeds whose slot changed shards between `from` and
  /// `to` (slot-table diff, kViewSlots comparisons). Seeds on migrated
  /// slots may reflect the old owner's tail — a guaranteed misprediction —
  /// but seeds on unmoved slots are exactly as good as before the
  /// reconfiguration, so a migration must not cold-start queue-seed
  /// accuracy cluster-wide. Returns the number of seeds dropped.
  std::size_t invalidate_moved(const rc::ClusterView& from,
                               const rc::ClusterView& to);

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, SeedValue> data;
  };
  Stripe& stripe_of(const std::string& key) {
    return stripes_[std::hash<std::string>{}(key) % kStripes];
  }
  const Stripe& stripe_of(const std::string& key) const {
    return stripes_[std::hash<std::string>{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  spec::SpecEngine* engine_ = nullptr;
};

class QueueSeedPredictor final : public predict::Predictor {
 public:
  explicit QueueSeedPredictor(std::shared_ptr<SeedStore> seeds)
      : seeds_(std::move(seeds)) {}

  /// Drops every primed entry. The planner calls this at the start of each
  /// epoch; run_epoch is synchronous per client, so nothing from the
  /// previous epoch is still in flight when the map clears.
  void begin_epoch();

  /// Primes one queue position: predict(method, args) will return exactly
  /// `predicted` (the combined read result vlist(value, version)).
  void prime(const std::string& method, const ValueList& args,
             Value predicted);

  ValueList predict(const std::string& method, const ValueList& args) override;

  /// Actual combined read result for one position. Parsed back into the
  /// SeedStore (batch.read args carry the key at position 0), so validated
  /// reads refresh next epoch's seeds even for keys the batch never wrote.
  /// When the position was primed, also scores the seed exactly (primed
  /// value deep-compared against the actual) into checked()/correct() —
  /// the adaptive controller's accuracy signal. This is deliberately NOT
  /// the engine's predictions_correct: the engine only scores positions it
  /// chose to speculate on, while the controller needs accuracy over every
  /// primed seed, including epochs where the budget throttled speculation.
  void learn(const std::string& method, const ValueList& args,
             const Value& actual) override;

  std::size_t size() const override;
  const char* name() const override { return "queue-seed"; }

  const std::shared_ptr<SeedStore>& seeds() const { return seeds_; }
  std::uint64_t primed_total() const {
    return primed_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Cumulative primed positions scored / scored correct (see learn()).
  std::uint64_t checked() const {
    return checked_.load(std::memory_order_relaxed);
  }
  std::uint64_t correct() const {
    return correct_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<SeedStore> seeds_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Value> primed_;
  std::atomic<std::uint64_t> primed_total_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> correct_{0};
};

}  // namespace srpc::batch
