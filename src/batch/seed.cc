#include "batch/seed.h"

namespace srpc::batch {

void SeedStore::put(const std::string& key, std::string value,
                    std::int64_t version) {
  Stripe& stripe = stripe_of(key);
  std::optional<SeedValue> previous;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.data.find(key);
    if (it != stripe.data.end()) {
      if (it->second.version > version) return;  // monotone: keep newer
      previous = it->second;
    }
    stripe.data[key] = SeedValue{std::move(value), version};
  }
  if (engine_ != nullptr && engine_->speculative()) {
    engine_->set_rollback([this, key, previous, version] {
      Stripe& s = stripe_of(key);
      std::lock_guard<std::mutex> lock(s.mu);
      auto it = s.data.find(key);
      // Only undo if our put is still the latest state for the key; a
      // newer write (e.g. the commit round's exact-version put) wins.
      if (it == s.data.end() || it->second.version != version) return;
      if (previous.has_value()) {
        it->second = *previous;
      } else {
        s.data.erase(it);
      }
    });
  }
}

std::optional<SeedValue> SeedStore::get(const std::string& key) const {
  const Stripe& stripe = stripe_of(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.data.find(key);
  if (it == stripe.data.end()) return std::nullopt;
  return it->second;
}

void SeedStore::clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.data.clear();
  }
}

std::size_t SeedStore::invalidate_moved(const rc::ClusterView& from,
                                        const rc::ClusterView& to) {
  // Malformed slot tables (never produced by ClusterView factories, but the
  // views arrive off the wire) degrade to the conservative full clear.
  if (from.slot_owner.size() != static_cast<std::size_t>(rc::kViewSlots) ||
      to.slot_owner.size() != static_cast<std::size_t>(rc::kViewSlots)) {
    const std::size_t n = size();
    clear();
    return n;
  }
  std::array<bool, rc::kViewSlots> moved{};
  bool any = false;
  for (int slot = 0; slot < rc::kViewSlots; ++slot) {
    moved[static_cast<std::size_t>(slot)] =
        from.slot_owner[static_cast<std::size_t>(slot)] !=
        to.slot_owner[static_cast<std::size_t>(slot)];
    any = any || moved[static_cast<std::size_t>(slot)];
  }
  if (!any) return 0;
  std::size_t dropped = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto it = stripe.data.begin(); it != stripe.data.end();) {
      if (moved[static_cast<std::size_t>(rc::slot_of_key(it->first))]) {
        it = stripe.data.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::size_t SeedStore::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.data.size();
  }
  return total;
}

void QueueSeedPredictor::begin_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  primed_.clear();
}

void QueueSeedPredictor::prime(const std::string& method,
                               const ValueList& args, Value predicted) {
  const std::string key = predict::key_of(method, args);
  std::lock_guard<std::mutex> lock(mu_);
  primed_[key] = std::move(predicted);
  primed_total_.fetch_add(1, std::memory_order_relaxed);
}

ValueList QueueSeedPredictor::predict(const std::string& method,
                                      const ValueList& args) {
  const std::string key = predict::key_of(method, args);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = primed_.find(key);
  if (it == primed_.end()) return {};
  hits_.fetch_add(1, std::memory_order_relaxed);
  return {it->second};
}

void QueueSeedPredictor::learn(const std::string& method,
                               const ValueList& args, const Value& actual) {
  // batch.read args: (key, epoch, shard, pos, vepoch); actual:
  // vlist(value, version).
  // Tolerate anything else (the manager shadow-evaluates every observed
  // call) by simply not learning from it.
  if (args.empty() || args[0].type() != Value::Type::kString ||
      actual.type() != Value::Type::kList) {
    return;
  }
  {
    // Score the primed seed for this exact position, if any: the engine
    // validates by deep (value, version) equality, so score the same way.
    const std::string key = predict::key_of(method, args);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = primed_.find(key);
    if (it != primed_.end()) {
      checked_.fetch_add(1, std::memory_order_relaxed);
      if (it->second == actual) {
        correct_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const ValueList& pair = actual.as_list();
  if (pair.size() < 2 || pair[0].type() != Value::Type::kString ||
      pair[1].type() != Value::Type::kInt) {
    return;
  }
  seeds_->put(args[0].as_string(), pair[0].as_string(), pair[1].as_int());
}

std::size_t QueueSeedPredictor::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primed_.size();
}

}  // namespace srpc::batch
