// BatchExecutor — executes one planned batch's per-partition queues and
// resolves every wire read (DESIGN.md §12.2).
//
// kGroupCommit: each shard queue's wire reads run as sequential quorum
// reads in queue order — the honest non-speculative queue machine (a queue
// processes its operations serially; parallelism comes from having several
// queues).
//
// kSpeculative: each shard queue becomes a SpecRPC callback chain over its
// wire reads, issued concurrently across shards. The reads carry no
// explicit predictions — the engine's PredictionSupplier hook consults the
// client's QueueSeedPredictor (primed from queue order by the planner), so
// accuracy tracking, the speculation budget and admission governance all
// see batch traffic exactly like any other speculative workload. With warm
// seeds the whole queue pipelines to ~one RTT; a misprediction at position
// k abandons the branches spawned for positions k+1.. and the engine
// re-executes the chain suffix on the actual value (the rollback-suffix
// invariant: positions before k are never re-run).
//
// Each callback also refreshes the SeedStore with the read it observed;
// from a speculative branch that put registers a SideTable-style rollback,
// so abandoned branches cannot pollute next epoch's seeds.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "batch/planner.h"
#include "batch/seed.h"
#include "rc/kit.h"
#include "rc/view.h"

namespace srpc::batch {

/// Resolved wire reads, keyed by (txn_pos, op_pos).
using ReadSet = std::map<std::pair<std::size_t, std::size_t>, rc::ReadResult>;

class BatchExecutor {
 public:
  BatchExecutor(rc::RpcKit& kit, std::shared_ptr<rc::ViewProvider> views,
                int my_dc, int read_quorum, std::shared_ptr<SeedStore> seeds);

  /// Resolves every wire read of `plan` under `view` (the view the plan was
  /// routed with — every batch.read is stamped with its epoch, so a server
  /// on a newer view NACKs and the whole call surfaces WrongEpochError for
  /// the client to re-plan). kSpeculative requires the kit to wrap a
  /// SpecRPC engine and falls back to the sequential path otherwise.
  /// Speculative chains spec_block before returning results, so everything
  /// in the ReadSet is non-speculative.
  ReadSet execute(const BatchPlan& plan, BatchMode mode,
                  std::shared_ptr<const rc::ClusterView> view);

  /// One blocking quorum read through the batch.read method (also used by
  /// the per-txn baseline so all modes share server-side read semantics).
  /// Throws rc::WrongEpochError on a stale-epoch NACK.
  rc::ReadResult quorum_read(const rc::ClusterView& view,
                             const std::string& key, std::uint64_t epoch,
                             int shard, std::size_t pos);

 private:
  using View = std::shared_ptr<const rc::ClusterView>;

  std::vector<Address> replicas_for(const rc::ClusterView& view,
                                    int shard) const;
  spec::CallbackFactory chain_factory(
      View view, std::shared_ptr<const std::vector<WireRead>> reads,
      std::uint64_t epoch, std::size_t idx,
      std::vector<rc::ReadResult> acc) const;

  rc::RpcKit& kit_;
  std::shared_ptr<rc::ViewProvider> views_;
  int my_dc_;
  int read_quorum_;
  std::shared_ptr<SeedStore> seeds_;
};

}  // namespace srpc::batch
