#include "rpc/node.h"

#include "common/logging.h"
#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::rpc {

// NodeCore decouples Responder lifetime from Node lifetime: a Responder can
// outlive its Node (e.g. a timer completion firing during shutdown) and must
// then degrade to a no-op instead of touching freed state.
class NodeCore {
 public:
  NodeCore(Transport& transport, const Codec& codec)
      : transport_(&transport), codec_(codec) {}

  void detach() {
    std::lock_guard<std::mutex> lock(mu_);
    transport_ = nullptr;
  }

  void send_response(const Address& dst, const Response& rsp) {
    std::lock_guard<std::mutex> lock(mu_);
    if (transport_ == nullptr) return;
    transport_->send(dst, encode_response(rsp, codec_));
  }

 private:
  std::mutex mu_;
  Transport* transport_;
  const Codec& codec_;
};

struct Responder::State {
  std::shared_ptr<NodeCore> core;
  Address caller;
  CallId call_id;
  bool finished = false;
  std::mutex mu;

  void complete(bool ok, Value result, const std::string& error) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (finished) return;
      finished = true;
    }
    Response rsp;
    rsp.call_id = call_id;
    rsp.ok = ok;
    rsp.result = std::move(result);
    rsp.error = error;
    core->send_response(caller, rsp);
  }
};

Responder::Responder(std::shared_ptr<NodeCore> core, Address caller,
                     CallId call_id)
    : state_(std::make_shared<State>()) {
  state_->core = std::move(core);
  state_->caller = std::move(caller);
  state_->call_id = call_id;
}

Responder::~Responder() {
  // Last reference going away without a reply: report an error so the
  // client does not hang. complete() is a no-op if already finished.
  if (state_ && state_.use_count() == 1) {
    state_->complete(false, Value(), "handler dropped the request");
  }
}

void Responder::finish(Value result) {
  state_->complete(true, std::move(result), {});
}

void Responder::fail(const std::string& error) {
  state_->complete(false, Value(), error);
}

void CallContext::finish_after(Duration work, Responder responder,
                               Value result) const {
  auto shared = std::make_shared<Responder>(std::move(responder));
  auto value = std::make_shared<Value>(std::move(result));
  wheel->schedule_after(work, [shared, value]() mutable {
    shared->finish(std::move(*value));
  });
}

Node::Node(Transport& transport, Executor& executor, TimerWheel& wheel,
           NodeConfig config)
    : transport_(transport),
      executor_(executor),
      wheel_(wheel),
      config_(config),
      core_(std::make_shared<NodeCore>(transport, *config.codec)) {
  transport_.set_receiver([this](const Address& src, Bytes frame) {
    on_message(src, std::move(frame));
  });
}

Node::~Node() {
  transport_.set_receiver(nullptr);
  core_->detach();
  // Fail anything still pending so callers blocked in get() wake up.
  std::unordered_map<CallId, Future::Ptr> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(pending_);
  }
  for (auto& [_, future] : pending)
    future->resolve(Outcome::failure("node shut down"));
}

void Node::register_method(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  methods_[name] = std::move(handler);
}

Future::Ptr Node::call(const Address& dst, const std::string& method,
                       ValueList args) {
  Request req;
  req.method = method;
  req.args = std::move(args);
  auto future = Future::create();
  {
    std::lock_guard<std::mutex> lock(mu_);
    req.call_id = next_call_id_++;
    pending_.emplace(req.call_id, future);
  }
  if (config_.call_timeout > Duration::zero()) {
    const CallId id = req.call_id;
    wheel_.schedule_after(config_.call_timeout, [this, id] {
      Future::Ptr future;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        future = it->second;
        pending_.erase(it);
      }
      future->resolve(Outcome::failure("call timed out"));
    });
  }
  transport_.send(dst, encode_request(req, *config_.codec));
  return future;
}

void Node::on_message(const Address& src, Bytes frame) {
  auto dispatch = [this, src, frame = std::move(frame)]() mutable {
    try {
      switch (peek_type(frame)) {
        case MsgType::kRequest:
          on_request(src, decode_request(frame, *config_.codec));
          break;
        case MsgType::kResponse:
          on_response(decode_response(frame, *config_.codec));
          break;
      }
    } catch (const DecodeError& e) {
      SRPC_LOG(ERROR) << address() << ": bad frame from " << src << ": "
                      << e.what();
    }
    // The frame is fully decoded; recycle its capacity for future encodes.
    BufferPool::release(std::move(frame));
  };
  if (config_.per_message_overhead > Duration::zero()) {
    // Model framework processing cost (GrpcSim) as added dispatch latency.
    wheel_.schedule_after(config_.per_message_overhead,
                          [this, d = std::move(dispatch)]() mutable {
                            executor_.post(std::move(d));
                          });
  } else {
    dispatch();
  }
}

void Node::on_request(const Address& src, Request req) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = methods_.find(req.method);
    if (it != methods_.end()) handler = it->second;
  }
  Responder responder(core_, src, req.call_id);
  if (!handler) {
    responder.fail("unknown method: " + req.method);
    return;
  }
  CallContext ctx;
  ctx.caller = src;
  ctx.call_id = req.call_id;
  ctx.wheel = &wheel_;
  try {
    handler(ctx, std::move(req.args), std::move(responder));
  } catch (const std::exception& e) {
    // The handler threw before taking ownership of the responder path;
    // the moved-from responder (if not finished) reports the error.
    SRPC_LOG(ERROR) << address() << ": handler for " << req.method
                    << " threw: " << e.what();
  }
}

void Node::on_response(Response rsp) {
  Future::Ptr future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(rsp.call_id);
    if (it == pending_.end()) return;  // late reply after timeout
    future = it->second;
    pending_.erase(it);
  }
  if (rsp.ok) {
    future->resolve(Outcome::success(std::move(rsp.result)));
  } else {
    future->resolve(Outcome::failure(rsp.error));
  }
}

}  // namespace srpc::rpc
