#include "rpc/node.h"

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::rpc {

namespace {
std::uint64_t hash_addr(const Address& addr) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : addr) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

// NodeCore is the actual engine; it decouples in-flight work (Responders,
// timer callbacks, delayed dispatches) from Node lifetime. Everything that
// can fire after ~Node holds only a weak_ptr to the core and degrades to a
// no-op once shutdown() has run.
class NodeCore : public std::enable_shared_from_this<NodeCore> {
 public:
  NodeCore(Transport& transport, Executor& executor, TimerWheel& wheel,
           NodeConfig config)
      : executor_(executor),
        wheel_(wheel),
        config_(config),
        transport_(&transport),
        addr_(transport.address()),
        rng_(hash_addr(addr_) ^ 0x726574727921ull) {}

  /// Installs the transport receiver; separate from the constructor because
  /// it needs weak_from_this().
  void start() {
    transport_->set_receiver(
        [weak = weak_from_this()](const Address& src, Bytes frame) {
          if (auto core = weak.lock()) core->on_message(src, std::move(frame));
        });
  }

  /// Fails every pending call, cancels their timers, and detaches the
  /// transport. Idempotent; called from ~Node.
  void shutdown() {
    std::unordered_map<CallId, std::shared_ptr<PendingCall>> calls;
    std::vector<TimerId> timers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      transport_ = nullptr;
      calls.swap(calls_);
      by_wire_.clear();
      for (auto& [_, rec] : calls) {
        rec->done = true;
        if (rec->timer != 0) timers.push_back(rec->timer);
      }
    }
    for (TimerId t : timers) wheel_.cancel(t);
    for (auto& [_, rec] : calls)
      rec->future->resolve(Outcome::failure("node shut down"));
  }

  void register_method(const std::string& name, Node::Handler handler) {
    std::lock_guard<std::mutex> lock(mu_);
    methods_[name] = std::move(handler);
  }

  Future::Ptr call(const Address& dst, const std::string& method,
                   ValueList args) {
    auto future = Future::create();
    auto rec = std::make_shared<PendingCall>();
    Request req;
    req.method = method;
    Transport* transport = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        future->resolve(Outcome::failure("node shut down"));
        return future;
      }
      transport = transport_;
      req.call_id = next_call_id_++;
      rec->logical_id = req.call_id;
      rec->dst = dst;
      rec->method = method;
      rec->future = future;
      rec->wire_ids.push_back(req.call_id);
      rec->deadline = config_.call_timeout > Duration::zero()
                          ? Clock::now() + config_.call_timeout
                          : TimePoint::max();
      if (config_.retry.enabled()) {
        rec->args = args;  // retained for re-encoding on retry
        req.args = std::move(args);
      } else {
        req.args = std::move(args);
      }
      calls_.emplace(rec->logical_id, rec);
      by_wire_.emplace(req.call_id, rec);
      schedule_attempt_timer_locked(*rec);
    }
    if (transport != nullptr &&
        !transport->send(dst, encode_request(req, *config_.codec))) {
      on_send_failed(rec->logical_id, 1);
    }
    return future;
  }

  void send_response(const Address& dst, const Response& rsp) {
    Transport* transport = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      transport = transport_;
    }
    if (transport == nullptr) return;
    transport->send(dst, encode_response(rsp, *config_.codec));
  }

  TimerWheel& wheel() { return wheel_; }

 private:
  /// One logical call; wire_ids maps every attempt-tagged id issued for it.
  struct PendingCall {
    CallId logical_id = 0;
    Address dst;
    std::string method;
    ValueList args;  // kept only when retries are enabled
    Future::Ptr future;
    std::vector<CallId> wire_ids;
    int attempt = 1;
    TimePoint deadline;  // TimePoint::max() when no overall timeout
    TimerId timer = 0;   // current attempt-timeout or backoff timer
    bool done = false;
  };

  /// Schedules the per-attempt (or overall) timeout timer. mu_ held.
  void schedule_attempt_timer_locked(PendingCall& rec) {
    const auto now = Clock::now();
    Duration wait;
    if (config_.retry.enabled() &&
        config_.retry.attempt_timeout > Duration::zero()) {
      wait = config_.retry.attempt_timeout;
      if (rec.deadline != TimePoint::max() && rec.deadline - now < wait) {
        wait = rec.deadline - now;
      }
    } else if (rec.deadline != TimePoint::max()) {
      wait = rec.deadline - now;
    } else {
      return;  // no deadline and no per-attempt bound: wait forever
    }
    if (wait < Duration::zero()) wait = Duration::zero();
    rec.timer = wheel_.schedule_after(
        wait, [weak = weak_from_this(), id = rec.logical_id,
               attempt = rec.attempt] {
          if (auto core = weak.lock()) core->on_attempt_timeout(id, attempt);
        });
  }

  void on_attempt_timeout(CallId logical_id, int attempt) {
    Future::Ptr to_fail;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = calls_.find(logical_id);
      if (it == calls_.end()) return;
      auto& rec = *it->second;
      if (rec.done || rec.attempt != attempt) return;  // stale timer
      const auto now = Clock::now();
      bool retry = config_.retry.enabled() &&
                   rec.attempt < config_.retry.max_attempts && !stopping_;
      Duration backoff = Duration::zero();
      if (retry) {
        backoff = config_.retry.backoff_after(rec.attempt, rng_);
        if (rec.deadline != TimePoint::max() &&
            now + backoff >= rec.deadline) {
          retry = false;  // backoff would overrun the overall deadline
        }
      }
      if (!retry) {
        rec.done = true;
        for (CallId wire : rec.wire_ids) by_wire_.erase(wire);
        to_fail = rec.future;
        calls_.erase(it);
      } else {
        rec.attempt += 1;
        rec.timer = wheel_.schedule_after(
            backoff, [weak = weak_from_this(), logical_id,
                      attempt = rec.attempt] {
              if (auto core = weak.lock())
                core->resend_attempt(logical_id, attempt);
            });
      }
    }
    if (to_fail) to_fail->resolve(Outcome::failure("call timed out"));
  }

  /// Issues attempt `attempt` of a still-pending call under a fresh wire id.
  void resend_attempt(CallId logical_id, int attempt) {
    Request req;
    Address dst;
    Transport* transport = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      auto it = calls_.find(logical_id);
      if (it == calls_.end()) return;
      auto& rec = *it->second;
      if (rec.done || rec.attempt != attempt) return;
      req.call_id = next_call_id_++;
      req.method = rec.method;
      req.args = rec.args;  // copy; later attempts may need them again
      rec.wire_ids.push_back(req.call_id);
      by_wire_.emplace(req.call_id, it->second);
      dst = rec.dst;
      transport = transport_;
      schedule_attempt_timer_locked(rec);
    }
    if (transport != nullptr &&
        !transport->send(dst, encode_request(req, *config_.codec))) {
      on_send_failed(logical_id, attempt);
    }
  }

  /// The request frame never left this process (connect refused, connection
  /// closed, or outbound watermark shed): fail the attempt now instead of
  /// waiting out the attempt timeout. RetryPolicy backoff paces any further
  /// attempts exactly as if the timer had fired.
  void on_send_failed(CallId logical_id, int attempt) {
    TimerId stale = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = calls_.find(logical_id);
      if (it == calls_.end()) return;
      auto& rec = *it->second;
      if (rec.done || rec.attempt != attempt) return;
      stale = rec.timer;
      rec.timer = 0;
    }
    if (stale != 0) wheel_.cancel(stale);
    // If the attempt timer squeezed in between the unlock and the cancel,
    // on_attempt_timeout has already advanced rec.attempt and this call is
    // discarded by the staleness check — the expedite is at-most-once.
    on_attempt_timeout(logical_id, attempt);
  }

  void on_message(const Address& src, Bytes frame) {
    auto dispatch = [weak = weak_from_this(), src,
                     frame = std::move(frame)]() mutable {
      if (auto core = weak.lock()) {
        core->dispatch_frame(src, std::move(frame));
      } else {
        BufferPool::release(std::move(frame));
      }
    };
    if (config_.per_message_overhead > Duration::zero()) {
      // Model framework processing cost (GrpcSim) as added dispatch latency.
      // Weak capture: the delayed dispatch must not outlive the core.
      wheel_.schedule_after(config_.per_message_overhead,
                            [weak = weak_from_this(),
                             d = std::move(dispatch)]() mutable {
                              if (auto core = weak.lock())
                                core->executor_.post(std::move(d));
                            });
    } else {
      dispatch();
    }
  }

  void dispatch_frame(const Address& src, Bytes frame) {
    try {
      switch (peek_type(frame)) {
        case MsgType::kRequest:
          on_request(src, decode_request(frame, *config_.codec));
          break;
        case MsgType::kResponse:
          on_response(decode_response(frame, *config_.codec));
          break;
      }
    } catch (const DecodeError& e) {
      SRPC_LOG(ERROR) << addr_ << ": bad frame from " << src << ": "
                      << e.what();
    }
    // The frame is fully decoded; recycle its capacity for future encodes.
    BufferPool::release(std::move(frame));
  }

  void on_request(const Address& src, Request req) {
    Node::Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      auto it = methods_.find(req.method);
      if (it != methods_.end()) handler = it->second;
    }
    Responder responder(shared_from_this(), src, req.call_id);
    if (!handler) {
      responder.fail("unknown method: " + req.method);
      return;
    }
    CallContext ctx;
    ctx.caller = src;
    ctx.call_id = req.call_id;
    ctx.wheel = &wheel_;
    try {
      handler(ctx, std::move(req.args), std::move(responder));
    } catch (const std::exception& e) {
      // The handler threw before taking ownership of the responder path;
      // the moved-from responder (if not finished) reports the error.
      SRPC_LOG(ERROR) << addr_ << ": handler for " << req.method
                      << " threw: " << e.what();
    }
  }

  void on_response(Response rsp) {
    Future::Ptr future;
    TimerId timer = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = by_wire_.find(rsp.call_id);
      if (it == by_wire_.end()) {
        // Duplicate delivery, a reply to a superseded attempt, or a late
        // reply after the call already timed out. All are expected under
        // fault injection; the first winner already resolved the future.
        SRPC_LOG(DEBUG) << addr_ << ": ignoring stale/duplicate response "
                        << rsp.call_id;
        return;
      }
      auto rec = it->second;
      rec->done = true;
      for (CallId wire : rec->wire_ids) by_wire_.erase(wire);
      calls_.erase(rec->logical_id);
      timer = rec->timer;
      rec->timer = 0;
      future = rec->future;
    }
    if (timer != 0) wheel_.cancel(timer);
    if (rsp.ok) {
      future->resolve(Outcome::success(std::move(rsp.result)));
    } else {
      future->resolve(Outcome::failure(rsp.error));
    }
  }

  Executor& executor_;
  TimerWheel& wheel_;
  const NodeConfig config_;
  Transport* transport_;  // nulled by shutdown(); guarded by mu_
  const Address addr_;

  std::mutex mu_;
  bool stopping_ = false;
  std::unordered_map<std::string, Node::Handler> methods_;
  std::unordered_map<CallId, std::shared_ptr<PendingCall>> calls_;
  std::unordered_map<CallId, std::shared_ptr<PendingCall>> by_wire_;
  CallId next_call_id_ = 1;
  Rng rng_;  // retry backoff jitter; guarded by mu_
};

struct Responder::State {
  std::shared_ptr<NodeCore> core;
  Address caller;
  CallId call_id;
  bool finished = false;
  std::mutex mu;

  // Exact drop detection: when the last reference goes away without a
  // reply, the destructor reports an error so the client never hangs.
  // (The previous design sniffed use_count() == 1 in ~Responder, which is
  // racy when the state is shared across threads.)
  ~State() { complete(false, Value(), "handler dropped the request"); }

  void complete(bool ok, Value result, const std::string& error) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (finished) return;
      finished = true;
    }
    Response rsp;
    rsp.call_id = call_id;
    rsp.ok = ok;
    rsp.result = std::move(result);
    rsp.error = error;
    core->send_response(caller, rsp);
  }
};

Responder::Responder(std::shared_ptr<NodeCore> core, Address caller,
                     CallId call_id)
    : state_(std::make_shared<State>()) {
  state_->core = std::move(core);
  state_->caller = std::move(caller);
  state_->call_id = call_id;
}

Responder::~Responder() = default;

void Responder::finish(Value result) {
  state_->complete(true, std::move(result), {});
}

void Responder::fail(const std::string& error) {
  state_->complete(false, Value(), error);
}

void CallContext::finish_after(Duration work, Responder responder,
                               Value result) const {
  auto shared = std::make_shared<Responder>(std::move(responder));
  auto value = std::make_shared<Value>(std::move(result));
  wheel->schedule_after(work, [shared, value]() mutable {
    shared->finish(std::move(*value));
  });
}

Node::Node(Transport& transport, Executor& executor, TimerWheel& wheel,
           NodeConfig config)
    : transport_(transport),
      executor_(executor),
      wheel_(wheel),
      config_(config),
      core_(std::make_shared<NodeCore>(transport, executor, wheel, config)) {
  core_->start();
}

Node::~Node() {
  transport_.set_receiver(nullptr);
  // An in-flight dispatch holds the core alive through its shared_ptr, but
  // the handlers it may invoke capture caller-owned state — wait until no
  // receiver invocation is running before the caller tears that down.
  transport_.quiesce();
  core_->shutdown();
}

void Node::register_method(const std::string& name, Handler handler) {
  core_->register_method(name, std::move(handler));
}

Future::Ptr Node::call(const Address& dst, const std::string& method,
                       ValueList args) {
  return core_->call(dst, method, std::move(args));
}

}  // namespace srpc::rpc
