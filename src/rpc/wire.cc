#include "rpc/wire.h"

#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::rpc {

void encode_request_into(const Request& req, const Codec& codec, Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kRequest));
  w.u64(req.call_id);
  w.str32(req.method);
  w.u32(static_cast<std::uint32_t>(req.args.size()));
  for (const auto& a : req.args) codec.encode(a, out);
}

void encode_response_into(const Response& rsp, const Codec& codec,
                          Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kResponse));
  w.u64(rsp.call_id);
  w.u8(rsp.ok ? 1 : 0);
  if (rsp.ok) {
    codec.encode(rsp.result, out);
  } else {
    w.str32(rsp.error);
  }
}

Bytes encode_request(const Request& req, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_request_into(req, codec, out);
  return out;
}

Bytes encode_response(const Response& rsp, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_response_into(rsp, codec, out);
  return out;
}

MsgType peek_type(const Bytes& frame) {
  if (frame.empty()) throw DecodeError("empty frame");
  return static_cast<MsgType>(frame[0]);
}

Request decode_request(const Bytes& frame, const Codec& codec) {
  Reader r(frame);
  if (static_cast<MsgType>(r.u8()) != MsgType::kRequest)
    throw DecodeError("not a request");
  Request req;
  req.call_id = r.u64();
  req.method = r.str32();
  const std::uint32_t n = r.u32();
  req.args.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) req.args.push_back(codec.decode(r));
  return req;
}

Response decode_response(const Bytes& frame, const Codec& codec) {
  Reader r(frame);
  if (static_cast<MsgType>(r.u8()) != MsgType::kResponse)
    throw DecodeError("not a response");
  Response rsp;
  rsp.call_id = r.u64();
  rsp.ok = r.u8() != 0;
  if (rsp.ok) {
    rsp.result = codec.decode(r);
  } else {
    rsp.error = r.str32();
  }
  return rsp;
}

}  // namespace srpc::rpc
