// TradRPC node: the asynchronous (non-speculative) RPC engine.
//
// A node owns one Transport endpoint and acts as both client and server —
// servers in the evaluation issue RPCs of their own (e.g. a Replicated
// Commit coordinator preparing its local shards), so the roles share one
// endpoint and one wire demultiplexer.
//
// Callbacks on futures give TradRPC the same programming model as SpecRPC
// minus speculation ("TradRPC, an RPC framework sharing much of SpecRPC's
// code base without speculation", §5). GrpcSim (src/grpcsim) is this same
// engine configured with a compact codec and a per-message feature-
// processing overhead, standing in for gRPC (see DESIGN.md §3).
//
// Lifetime model: all mutable engine state lives in NodeCore, a shared
// object. Transport receivers and timer-wheel callbacks capture only a
// weak handle to it, so a timer or in-flight message that outlives the Node
// degrades to a no-op instead of touching freed state. The Node class is a
// thin facade that starts the core on construction and shuts it down (and
// fails every pending call) on destruction.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/executor.h"
#include "common/retry.h"
#include "common/timer_wheel.h"
#include "rpc/future.h"
#include "rpc/wire.h"
#include "transport/transport.h"

namespace srpc::rpc {

struct NodeConfig {
  const Codec* codec = &binary_codec();
  /// Extra processing delay applied to every received message before it is
  /// dispatched (models framework overhead; 0 for TradRPC).
  Duration per_message_overhead = Duration::zero();
  /// Overall deadline: calls that have not completed by then fail with a
  /// timeout error. Zero disables the deadline.
  Duration call_timeout = std::chrono::seconds(30);
  /// When enabled, timed-out attempts are re-issued (with fresh wire call
  /// ids) until the overall deadline; see DESIGN.md §7 for the idempotency
  /// contract this places on handlers.
  RetryPolicy retry;
};

/// Completes one server-side call. Move-only sentinel semantics: finishing
/// twice is ignored; a Responder destroyed without finishing sends an error
/// so clients never hang on a dropped request.
class Responder {
 public:
  Responder(std::shared_ptr<class NodeCore> core, Address caller,
            CallId call_id);
  Responder(Responder&&) = default;
  Responder& operator=(Responder&&) = default;
  ~Responder();

  void finish(Value result);
  void fail(const std::string& error);

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Context visible to a server-side handler.
struct CallContext {
  Address caller;
  CallId call_id = 0;
  TimerWheel* wheel = nullptr;

  /// Simulates `work` of service time, then finishes the call. This is how
  /// benches model the paper's "each RPC requires 10 ms to complete" without
  /// burning CPU (DESIGN.md §3).
  void finish_after(Duration work, Responder responder, Value result) const;
};

class Node {
 public:
  using Handler =
      std::function<void(const CallContext&, ValueList args, Responder)>;

  Node(Transport& transport, Executor& executor, TimerWheel& wheel,
       NodeConfig config = NodeConfig());
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Server side: registers `name`; re-registration replaces (tests use it).
  void register_method(const std::string& name, Handler handler);

  /// Client side: issues an asynchronous call; never blocks.
  Future::Ptr call(const Address& dst, const std::string& method,
                   ValueList args);

  /// Convenience for tests/examples: blocking call.
  Value call_sync(const Address& dst, const std::string& method,
                  ValueList args) {
    return call(dst, method, std::move(args))->get();
  }

  const Address& address() const { return transport_.address(); }
  Executor& executor() { return executor_; }
  TimerWheel& wheel() { return wheel_; }
  const Codec& codec() const { return *config_.codec; }

 private:
  Transport& transport_;
  Executor& executor_;
  TimerWheel& wheel_;
  NodeConfig config_;
  std::shared_ptr<NodeCore> core_;
};

}  // namespace srpc::rpc
