// Future for asynchronous RPC results.
//
// TradRPC is asynchronous: call() returns immediately with a Future; the
// dependent operation is either a blocking get() or a continuation attached
// with then(). SpecRPC's SpecFuture (specrpc/future.h) has the same shape
// but only ever resolves with non-speculative values.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/executor.h"
#include "serde/value.h"

namespace srpc::rpc {

/// RPC failure (remote error, timeout, transport shutdown).
class RpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Result of a completed call: a value or an error message.
struct Outcome {
  bool ok = false;
  Value value;
  std::string error;

  static Outcome success(Value v) { return Outcome{true, std::move(v), {}}; }
  static Outcome failure(std::string e) {
    return Outcome{false, Value(), std::move(e)};
  }
};

class Future {
 public:
  using Ptr = std::shared_ptr<Future>;
  using Continuation = std::function<void(const Outcome&)>;

  static Ptr create() { return std::make_shared<Future>(); }

  /// Blocks until resolution; returns the value or throws RpcError.
  Value get() {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return outcome_.has_value(); });
    if (!outcome_->ok) throw RpcError(outcome_->error);
    return outcome_->value;
  }

  /// Blocks with a timeout; std::nullopt on timeout.
  std::optional<Outcome> get_for(Duration timeout) {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [this] { return outcome_.has_value(); }))
      return std::nullopt;
    return outcome_;
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outcome_.has_value();
  }

  /// Attaches a continuation; runs inline if already resolved, otherwise on
  /// the resolving thread.
  void then(Continuation c) {
    Outcome snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!outcome_.has_value()) {
        continuations_.push_back(std::move(c));
        return;
      }
      snapshot = *outcome_;
    }
    c(snapshot);
  }

  /// Resolves the future. Only the first resolution takes effect.
  void resolve(Outcome outcome) {
    std::vector<Continuation> continuations;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (outcome_.has_value()) return;
      outcome_ = std::move(outcome);
      continuations.swap(continuations_);
    }
    cv_.notify_all();
    for (auto& c : continuations) c(*outcome_);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Outcome> outcome_;
  std::vector<Continuation> continuations_;
};

}  // namespace srpc::rpc
