// TradRPC wire protocol: a plain asynchronous request/response envelope.
#pragma once

#include <string>

#include "serde/codec.h"
#include "serde/value.h"

namespace srpc::rpc {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct Request {
  CallId call_id = 0;
  std::string method;
  ValueList args;
};

struct Response {
  CallId call_id = 0;
  bool ok = true;
  Value result;        // valid when ok
  std::string error;   // valid when !ok
};

/// Append-encode into a caller-supplied buffer (not cleared first), so a
/// reused/pooled buffer serves many messages without reallocating.
void encode_request_into(const Request& req, const Codec& codec, Bytes& out);
void encode_response_into(const Response& rsp, const Codec& codec, Bytes& out);

/// Convenience forms; the returned buffer comes from the thread-local
/// BufferPool, and receivers hand exhausted frames back to it after decode.
Bytes encode_request(const Request& req, const Codec& codec);
Bytes encode_response(const Response& rsp, const Codec& codec);

/// Peeks the message type of an encoded frame.
MsgType peek_type(const Bytes& frame);

Request decode_request(const Bytes& frame, const Codec& codec);
Response decode_response(const Bytes& frame, const Codec& codec);

}  // namespace srpc::rpc
