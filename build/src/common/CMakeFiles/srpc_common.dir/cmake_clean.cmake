file(REMOVE_RECURSE
  "CMakeFiles/srpc_common.dir/cpu_model.cc.o"
  "CMakeFiles/srpc_common.dir/cpu_model.cc.o.d"
  "CMakeFiles/srpc_common.dir/executor.cc.o"
  "CMakeFiles/srpc_common.dir/executor.cc.o.d"
  "CMakeFiles/srpc_common.dir/logging.cc.o"
  "CMakeFiles/srpc_common.dir/logging.cc.o.d"
  "CMakeFiles/srpc_common.dir/rng.cc.o"
  "CMakeFiles/srpc_common.dir/rng.cc.o.d"
  "CMakeFiles/srpc_common.dir/timer_wheel.cc.o"
  "CMakeFiles/srpc_common.dir/timer_wheel.cc.o.d"
  "libsrpc_common.a"
  "libsrpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
