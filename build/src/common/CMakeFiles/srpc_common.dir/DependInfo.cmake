
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cpu_model.cc" "src/common/CMakeFiles/srpc_common.dir/cpu_model.cc.o" "gcc" "src/common/CMakeFiles/srpc_common.dir/cpu_model.cc.o.d"
  "/root/repo/src/common/executor.cc" "src/common/CMakeFiles/srpc_common.dir/executor.cc.o" "gcc" "src/common/CMakeFiles/srpc_common.dir/executor.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/srpc_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/srpc_common.dir/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/srpc_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/srpc_common.dir/rng.cc.o.d"
  "/root/repo/src/common/timer_wheel.cc" "src/common/CMakeFiles/srpc_common.dir/timer_wheel.cc.o" "gcc" "src/common/CMakeFiles/srpc_common.dir/timer_wheel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
