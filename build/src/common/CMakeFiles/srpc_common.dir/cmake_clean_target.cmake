file(REMOVE_RECURSE
  "libsrpc_common.a"
)
