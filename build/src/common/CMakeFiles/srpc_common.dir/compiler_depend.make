# Empty compiler generated dependencies file for srpc_common.
# This may be replaced when dependencies are built.
