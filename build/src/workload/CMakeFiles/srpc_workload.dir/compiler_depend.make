# Empty compiler generated dependencies file for srpc_workload.
# This may be replaced when dependencies are built.
