file(REMOVE_RECURSE
  "libsrpc_workload.a"
)
