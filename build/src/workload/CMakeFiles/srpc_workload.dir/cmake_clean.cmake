file(REMOVE_RECURSE
  "CMakeFiles/srpc_workload.dir/microbench.cc.o"
  "CMakeFiles/srpc_workload.dir/microbench.cc.o.d"
  "CMakeFiles/srpc_workload.dir/runner.cc.o"
  "CMakeFiles/srpc_workload.dir/runner.cc.o.d"
  "libsrpc_workload.a"
  "libsrpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
