file(REMOVE_RECURSE
  "CMakeFiles/srpc_optmodel.dir/model.cc.o"
  "CMakeFiles/srpc_optmodel.dir/model.cc.o.d"
  "CMakeFiles/srpc_optmodel.dir/spec_pipeline.cc.o"
  "CMakeFiles/srpc_optmodel.dir/spec_pipeline.cc.o.d"
  "libsrpc_optmodel.a"
  "libsrpc_optmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_optmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
