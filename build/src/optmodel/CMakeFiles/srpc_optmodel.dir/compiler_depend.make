# Empty compiler generated dependencies file for srpc_optmodel.
# This may be replaced when dependencies are built.
