file(REMOVE_RECURSE
  "libsrpc_optmodel.a"
)
