file(REMOVE_RECURSE
  "libsrpc_rpc.a"
)
