file(REMOVE_RECURSE
  "CMakeFiles/srpc_rpc.dir/node.cc.o"
  "CMakeFiles/srpc_rpc.dir/node.cc.o.d"
  "CMakeFiles/srpc_rpc.dir/wire.cc.o"
  "CMakeFiles/srpc_rpc.dir/wire.cc.o.d"
  "libsrpc_rpc.a"
  "libsrpc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
