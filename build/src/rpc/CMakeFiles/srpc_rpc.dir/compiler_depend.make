# Empty compiler generated dependencies file for srpc_rpc.
# This may be replaced when dependencies are built.
