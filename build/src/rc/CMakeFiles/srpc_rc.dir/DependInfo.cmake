
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rc/client.cc" "src/rc/CMakeFiles/srpc_rc.dir/client.cc.o" "gcc" "src/rc/CMakeFiles/srpc_rc.dir/client.cc.o.d"
  "/root/repo/src/rc/cluster.cc" "src/rc/CMakeFiles/srpc_rc.dir/cluster.cc.o" "gcc" "src/rc/CMakeFiles/srpc_rc.dir/cluster.cc.o.d"
  "/root/repo/src/rc/common.cc" "src/rc/CMakeFiles/srpc_rc.dir/common.cc.o" "gcc" "src/rc/CMakeFiles/srpc_rc.dir/common.cc.o.d"
  "/root/repo/src/rc/kit.cc" "src/rc/CMakeFiles/srpc_rc.dir/kit.cc.o" "gcc" "src/rc/CMakeFiles/srpc_rc.dir/kit.cc.o.d"
  "/root/repo/src/rc/server.cc" "src/rc/CMakeFiles/srpc_rc.dir/server.cc.o" "gcc" "src/rc/CMakeFiles/srpc_rc.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvstore/CMakeFiles/srpc_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/specrpc/CMakeFiles/srpc_specrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/grpcsim/CMakeFiles/srpc_grpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/srpc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/srpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/srpc_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
