file(REMOVE_RECURSE
  "libsrpc_rc.a"
)
