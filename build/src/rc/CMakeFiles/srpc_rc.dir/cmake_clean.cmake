file(REMOVE_RECURSE
  "CMakeFiles/srpc_rc.dir/client.cc.o"
  "CMakeFiles/srpc_rc.dir/client.cc.o.d"
  "CMakeFiles/srpc_rc.dir/cluster.cc.o"
  "CMakeFiles/srpc_rc.dir/cluster.cc.o.d"
  "CMakeFiles/srpc_rc.dir/common.cc.o"
  "CMakeFiles/srpc_rc.dir/common.cc.o.d"
  "CMakeFiles/srpc_rc.dir/kit.cc.o"
  "CMakeFiles/srpc_rc.dir/kit.cc.o.d"
  "CMakeFiles/srpc_rc.dir/server.cc.o"
  "CMakeFiles/srpc_rc.dir/server.cc.o.d"
  "libsrpc_rc.a"
  "libsrpc_rc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
