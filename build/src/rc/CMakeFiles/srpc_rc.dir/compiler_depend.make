# Empty compiler generated dependencies file for srpc_rc.
# This may be replaced when dependencies are built.
