file(REMOVE_RECURSE
  "libsrpc_transport.a"
)
