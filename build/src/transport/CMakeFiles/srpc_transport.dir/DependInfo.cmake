
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/geo.cc" "src/transport/CMakeFiles/srpc_transport.dir/geo.cc.o" "gcc" "src/transport/CMakeFiles/srpc_transport.dir/geo.cc.o.d"
  "/root/repo/src/transport/sim_network.cc" "src/transport/CMakeFiles/srpc_transport.dir/sim_network.cc.o" "gcc" "src/transport/CMakeFiles/srpc_transport.dir/sim_network.cc.o.d"
  "/root/repo/src/transport/tcp_transport.cc" "src/transport/CMakeFiles/srpc_transport.dir/tcp_transport.cc.o" "gcc" "src/transport/CMakeFiles/srpc_transport.dir/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/srpc_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
