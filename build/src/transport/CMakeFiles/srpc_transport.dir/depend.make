# Empty dependencies file for srpc_transport.
# This may be replaced when dependencies are built.
