file(REMOVE_RECURSE
  "CMakeFiles/srpc_transport.dir/geo.cc.o"
  "CMakeFiles/srpc_transport.dir/geo.cc.o.d"
  "CMakeFiles/srpc_transport.dir/sim_network.cc.o"
  "CMakeFiles/srpc_transport.dir/sim_network.cc.o.d"
  "CMakeFiles/srpc_transport.dir/tcp_transport.cc.o"
  "CMakeFiles/srpc_transport.dir/tcp_transport.cc.o.d"
  "libsrpc_transport.a"
  "libsrpc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
