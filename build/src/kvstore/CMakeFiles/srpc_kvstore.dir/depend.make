# Empty dependencies file for srpc_kvstore.
# This may be replaced when dependencies are built.
