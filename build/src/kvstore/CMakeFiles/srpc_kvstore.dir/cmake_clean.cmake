file(REMOVE_RECURSE
  "CMakeFiles/srpc_kvstore.dir/store.cc.o"
  "CMakeFiles/srpc_kvstore.dir/store.cc.o.d"
  "CMakeFiles/srpc_kvstore.dir/txn_log.cc.o"
  "CMakeFiles/srpc_kvstore.dir/txn_log.cc.o.d"
  "libsrpc_kvstore.a"
  "libsrpc_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
