file(REMOVE_RECURSE
  "libsrpc_kvstore.a"
)
