
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/store.cc" "src/kvstore/CMakeFiles/srpc_kvstore.dir/store.cc.o" "gcc" "src/kvstore/CMakeFiles/srpc_kvstore.dir/store.cc.o.d"
  "/root/repo/src/kvstore/txn_log.cc" "src/kvstore/CMakeFiles/srpc_kvstore.dir/txn_log.cc.o" "gcc" "src/kvstore/CMakeFiles/srpc_kvstore.dir/txn_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/srpc_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
