file(REMOVE_RECURSE
  "libsrpc_serde.a"
)
