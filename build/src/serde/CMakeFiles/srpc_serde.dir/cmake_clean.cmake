file(REMOVE_RECURSE
  "CMakeFiles/srpc_serde.dir/codec.cc.o"
  "CMakeFiles/srpc_serde.dir/codec.cc.o.d"
  "CMakeFiles/srpc_serde.dir/value.cc.o"
  "CMakeFiles/srpc_serde.dir/value.cc.o.d"
  "libsrpc_serde.a"
  "libsrpc_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
