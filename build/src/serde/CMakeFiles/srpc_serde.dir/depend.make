# Empty dependencies file for srpc_serde.
# This may be replaced when dependencies are built.
