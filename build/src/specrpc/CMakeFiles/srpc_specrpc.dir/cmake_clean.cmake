file(REMOVE_RECURSE
  "CMakeFiles/srpc_specrpc.dir/engine.cc.o"
  "CMakeFiles/srpc_specrpc.dir/engine.cc.o.d"
  "CMakeFiles/srpc_specrpc.dir/registry.cc.o"
  "CMakeFiles/srpc_specrpc.dir/registry.cc.o.d"
  "CMakeFiles/srpc_specrpc.dir/wire.cc.o"
  "CMakeFiles/srpc_specrpc.dir/wire.cc.o.d"
  "libsrpc_specrpc.a"
  "libsrpc_specrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_specrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
