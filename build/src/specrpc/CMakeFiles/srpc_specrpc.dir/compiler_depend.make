# Empty compiler generated dependencies file for srpc_specrpc.
# This may be replaced when dependencies are built.
