file(REMOVE_RECURSE
  "libsrpc_specrpc.a"
)
