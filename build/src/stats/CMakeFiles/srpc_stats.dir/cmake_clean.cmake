file(REMOVE_RECURSE
  "CMakeFiles/srpc_stats.dir/histogram.cc.o"
  "CMakeFiles/srpc_stats.dir/histogram.cc.o.d"
  "libsrpc_stats.a"
  "libsrpc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
