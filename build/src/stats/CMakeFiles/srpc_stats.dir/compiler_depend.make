# Empty compiler generated dependencies file for srpc_stats.
# This may be replaced when dependencies are built.
