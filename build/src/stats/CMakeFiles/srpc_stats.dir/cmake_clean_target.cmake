file(REMOVE_RECURSE
  "libsrpc_stats.a"
)
