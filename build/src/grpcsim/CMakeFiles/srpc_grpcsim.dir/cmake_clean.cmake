file(REMOVE_RECURSE
  "CMakeFiles/srpc_grpcsim.dir/grpcsim.cc.o"
  "CMakeFiles/srpc_grpcsim.dir/grpcsim.cc.o.d"
  "libsrpc_grpcsim.a"
  "libsrpc_grpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_grpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
