
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grpcsim/grpcsim.cc" "src/grpcsim/CMakeFiles/srpc_grpcsim.dir/grpcsim.cc.o" "gcc" "src/grpcsim/CMakeFiles/srpc_grpcsim.dir/grpcsim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/srpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/srpc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/srpc_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
