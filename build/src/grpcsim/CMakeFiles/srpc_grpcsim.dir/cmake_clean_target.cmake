file(REMOVE_RECURSE
  "libsrpc_grpcsim.a"
)
