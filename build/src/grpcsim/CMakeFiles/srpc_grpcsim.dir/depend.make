# Empty dependencies file for srpc_grpcsim.
# This may be replaced when dependencies are built.
