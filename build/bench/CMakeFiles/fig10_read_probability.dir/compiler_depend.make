# Empty compiler generated dependencies file for fig10_read_probability.
# This may be replaced when dependencies are built.
