# Empty dependencies file for fig8a_prediction_rate.
# This may be replaced when dependencies are built.
