# Empty compiler generated dependencies file for fig9_ycsbt_ops.
# This may be replaced when dependencies are built.
