file(REMOVE_RECURSE
  "CMakeFiles/fig9_ycsbt_ops.dir/fig9_ycsbt_ops.cpp.o"
  "CMakeFiles/fig9_ycsbt_ops.dir/fig9_ycsbt_ops.cpp.o.d"
  "fig9_ycsbt_ops"
  "fig9_ycsbt_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ycsbt_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
