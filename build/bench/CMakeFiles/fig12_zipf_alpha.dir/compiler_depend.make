# Empty compiler generated dependencies file for fig12_zipf_alpha.
# This may be replaced when dependencies are built.
