file(REMOVE_RECURSE
  "CMakeFiles/fig12_zipf_alpha.dir/fig12_zipf_alpha.cpp.o"
  "CMakeFiles/fig12_zipf_alpha.dir/fig12_zipf_alpha.cpp.o.d"
  "fig12_zipf_alpha"
  "fig12_zipf_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_zipf_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
