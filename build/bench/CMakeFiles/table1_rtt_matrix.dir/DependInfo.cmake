
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_rtt_matrix.cpp" "bench/CMakeFiles/table1_rtt_matrix.dir/table1_rtt_matrix.cpp.o" "gcc" "bench/CMakeFiles/table1_rtt_matrix.dir/table1_rtt_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/srpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rc/CMakeFiles/srpc_rc.dir/DependInfo.cmake"
  "/root/repo/build/src/optmodel/CMakeFiles/srpc_optmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/srpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/specrpc/CMakeFiles/srpc_specrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/grpcsim/CMakeFiles/srpc_grpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/srpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/srpc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/srpc_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/srpc_kvstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
