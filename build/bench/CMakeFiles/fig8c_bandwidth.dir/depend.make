# Empty dependencies file for fig8c_bandwidth.
# This may be replaced when dependencies are built.
