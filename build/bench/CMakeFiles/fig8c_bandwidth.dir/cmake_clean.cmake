file(REMOVE_RECURSE
  "CMakeFiles/fig8c_bandwidth.dir/fig8c_bandwidth.cpp.o"
  "CMakeFiles/fig8c_bandwidth.dir/fig8c_bandwidth.cpp.o.d"
  "fig8c_bandwidth"
  "fig8c_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
