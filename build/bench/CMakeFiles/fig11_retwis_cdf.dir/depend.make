# Empty dependencies file for fig11_retwis_cdf.
# This may be replaced when dependencies are built.
