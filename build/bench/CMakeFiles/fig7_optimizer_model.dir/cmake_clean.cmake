file(REMOVE_RECURSE
  "CMakeFiles/fig7_optimizer_model.dir/fig7_optimizer_model.cpp.o"
  "CMakeFiles/fig7_optimizer_model.dir/fig7_optimizer_model.cpp.o.d"
  "fig7_optimizer_model"
  "fig7_optimizer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_optimizer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
