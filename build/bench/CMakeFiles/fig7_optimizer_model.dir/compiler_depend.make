# Empty compiler generated dependencies file for fig7_optimizer_model.
# This may be replaced when dependencies are built.
