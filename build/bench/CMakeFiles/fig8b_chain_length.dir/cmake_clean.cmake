file(REMOVE_RECURSE
  "CMakeFiles/fig8b_chain_length.dir/fig8b_chain_length.cpp.o"
  "CMakeFiles/fig8b_chain_length.dir/fig8b_chain_length.cpp.o.d"
  "fig8b_chain_length"
  "fig8b_chain_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_chain_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
