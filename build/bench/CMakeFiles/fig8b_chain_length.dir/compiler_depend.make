# Empty compiler generated dependencies file for fig8b_chain_length.
# This may be replaced when dependencies are built.
