# Empty compiler generated dependencies file for table2_retwis_profile.
# This may be replaced when dependencies are built.
