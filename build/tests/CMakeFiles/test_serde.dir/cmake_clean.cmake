file(REMOVE_RECURSE
  "CMakeFiles/test_serde.dir/test_serde.cc.o"
  "CMakeFiles/test_serde.dir/test_serde.cc.o.d"
  "test_serde"
  "test_serde.pdb"
  "test_serde[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
