# Empty compiler generated dependencies file for test_txn_log.
# This may be replaced when dependencies are built.
