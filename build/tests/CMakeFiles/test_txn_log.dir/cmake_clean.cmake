file(REMOVE_RECURSE
  "CMakeFiles/test_txn_log.dir/test_txn_log.cc.o"
  "CMakeFiles/test_txn_log.dir/test_txn_log.cc.o.d"
  "test_txn_log"
  "test_txn_log.pdb"
  "test_txn_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txn_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
