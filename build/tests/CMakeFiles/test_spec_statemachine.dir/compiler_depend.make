# Empty compiler generated dependencies file for test_spec_statemachine.
# This may be replaced when dependencies are built.
