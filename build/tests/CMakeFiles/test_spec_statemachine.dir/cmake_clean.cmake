file(REMOVE_RECURSE
  "CMakeFiles/test_spec_statemachine.dir/test_spec_statemachine.cc.o"
  "CMakeFiles/test_spec_statemachine.dir/test_spec_statemachine.cc.o.d"
  "test_spec_statemachine"
  "test_spec_statemachine.pdb"
  "test_spec_statemachine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
