file(REMOVE_RECURSE
  "CMakeFiles/test_spec_error_paths.dir/test_spec_error_paths.cc.o"
  "CMakeFiles/test_spec_error_paths.dir/test_spec_error_paths.cc.o.d"
  "test_spec_error_paths"
  "test_spec_error_paths.pdb"
  "test_spec_error_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_error_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
