# Empty compiler generated dependencies file for test_spec_engine.
# This may be replaced when dependencies are built.
