file(REMOVE_RECURSE
  "CMakeFiles/test_spec_engine.dir/test_spec_engine.cc.o"
  "CMakeFiles/test_spec_engine.dir/test_spec_engine.cc.o.d"
  "test_spec_engine"
  "test_spec_engine.pdb"
  "test_spec_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
