file(REMOVE_RECURSE
  "CMakeFiles/test_spec_soak.dir/test_spec_soak.cc.o"
  "CMakeFiles/test_spec_soak.dir/test_spec_soak.cc.o.d"
  "test_spec_soak"
  "test_spec_soak.pdb"
  "test_spec_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
