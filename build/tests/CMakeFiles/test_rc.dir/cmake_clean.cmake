file(REMOVE_RECURSE
  "CMakeFiles/test_rc.dir/test_rc.cc.o"
  "CMakeFiles/test_rc.dir/test_rc.cc.o.d"
  "test_rc"
  "test_rc.pdb"
  "test_rc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
