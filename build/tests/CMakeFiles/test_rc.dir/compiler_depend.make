# Empty compiler generated dependencies file for test_rc.
# This may be replaced when dependencies are built.
