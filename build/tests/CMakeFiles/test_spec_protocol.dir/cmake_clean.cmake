file(REMOVE_RECURSE
  "CMakeFiles/test_spec_protocol.dir/test_spec_protocol.cc.o"
  "CMakeFiles/test_spec_protocol.dir/test_spec_protocol.cc.o.d"
  "test_spec_protocol"
  "test_spec_protocol.pdb"
  "test_spec_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
