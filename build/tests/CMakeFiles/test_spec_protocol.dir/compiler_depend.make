# Empty compiler generated dependencies file for test_spec_protocol.
# This may be replaced when dependencies are built.
