file(REMOVE_RECURSE
  "CMakeFiles/test_spec_edge.dir/test_spec_edge.cc.o"
  "CMakeFiles/test_spec_edge.dir/test_spec_edge.cc.o.d"
  "test_spec_edge"
  "test_spec_edge.pdb"
  "test_spec_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
