# Empty dependencies file for test_spec_trace.
# This may be replaced when dependencies are built.
