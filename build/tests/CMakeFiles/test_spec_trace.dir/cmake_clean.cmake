file(REMOVE_RECURSE
  "CMakeFiles/test_spec_trace.dir/test_spec_trace.cc.o"
  "CMakeFiles/test_spec_trace.dir/test_spec_trace.cc.o.d"
  "test_spec_trace"
  "test_spec_trace.pdb"
  "test_spec_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
