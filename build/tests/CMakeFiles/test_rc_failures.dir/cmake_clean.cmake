file(REMOVE_RECURSE
  "CMakeFiles/test_rc_failures.dir/test_rc_failures.cc.o"
  "CMakeFiles/test_rc_failures.dir/test_rc_failures.cc.o.d"
  "test_rc_failures"
  "test_rc_failures.pdb"
  "test_rc_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
