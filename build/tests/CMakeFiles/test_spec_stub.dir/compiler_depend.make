# Empty compiler generated dependencies file for test_spec_stub.
# This may be replaced when dependencies are built.
