file(REMOVE_RECURSE
  "CMakeFiles/test_spec_stub.dir/test_spec_stub.cc.o"
  "CMakeFiles/test_spec_stub.dir/test_spec_stub.cc.o.d"
  "test_spec_stub"
  "test_spec_stub.pdb"
  "test_spec_stub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
