# Empty dependencies file for test_spec_pipeline.
# This may be replaced when dependencies are built.
