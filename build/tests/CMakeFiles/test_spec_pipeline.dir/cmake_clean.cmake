file(REMOVE_RECURSE
  "CMakeFiles/test_spec_pipeline.dir/test_spec_pipeline.cc.o"
  "CMakeFiles/test_spec_pipeline.dir/test_spec_pipeline.cc.o.d"
  "test_spec_pipeline"
  "test_spec_pipeline.pdb"
  "test_spec_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
