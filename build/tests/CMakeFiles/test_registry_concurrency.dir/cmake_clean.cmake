file(REMOVE_RECURSE
  "CMakeFiles/test_registry_concurrency.dir/test_registry_concurrency.cc.o"
  "CMakeFiles/test_registry_concurrency.dir/test_registry_concurrency.cc.o.d"
  "test_registry_concurrency"
  "test_registry_concurrency.pdb"
  "test_registry_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registry_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
