# Empty dependencies file for test_registry_concurrency.
# This may be replaced when dependencies are built.
