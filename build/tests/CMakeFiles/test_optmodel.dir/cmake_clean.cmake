file(REMOVE_RECURSE
  "CMakeFiles/test_optmodel.dir/test_optmodel.cc.o"
  "CMakeFiles/test_optmodel.dir/test_optmodel.cc.o.d"
  "test_optmodel"
  "test_optmodel.pdb"
  "test_optmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
