# Empty compiler generated dependencies file for test_optmodel.
# This may be replaced when dependencies are built.
