# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_serde[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_future[1]_include.cmake")
include("/root/repo/build/tests/test_spec_engine[1]_include.cmake")
include("/root/repo/build/tests/test_spec_statemachine[1]_include.cmake")
include("/root/repo/build/tests/test_spec_stub[1]_include.cmake")
include("/root/repo/build/tests/test_registry_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_spec_edge[1]_include.cmake")
include("/root/repo/build/tests/test_spec_trace[1]_include.cmake")
include("/root/repo/build/tests/test_spec_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_spec_soak[1]_include.cmake")
include("/root/repo/build/tests/test_spec_error_paths[1]_include.cmake")
include("/root/repo/build/tests/test_kvstore[1]_include.cmake")
include("/root/repo/build/tests/test_txn_log[1]_include.cmake")
include("/root/repo/build/tests/test_rc[1]_include.cmake")
include("/root/repo/build/tests/test_rc_failures[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_microbench[1]_include.cmake")
include("/root/repo/build/tests/test_optmodel[1]_include.cmake")
include("/root/repo/build/tests/test_spec_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
