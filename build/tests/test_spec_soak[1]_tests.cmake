add_test([=[SpecSoak.RandomizedMixedWorkloadStaysCorrect]=]  /root/repo/build/tests/test_spec_soak [==[--gtest_filter=SpecSoak.RandomizedMixedWorkloadStaysCorrect]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SpecSoak.RandomizedMixedWorkloadStaysCorrect]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_spec_soak_TESTS SpecSoak.RandomizedMixedWorkloadStaysCorrect)
