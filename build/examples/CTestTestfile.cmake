# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_tcp "/root/repo/build/examples/quickstart" "--tcp")
set_tests_properties(example_quickstart_tcp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analytics_pipeline "/root/repo/build/examples/analytics_pipeline")
set_tests_properties(example_analytics_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimizer_pipeline "/root/repo/build/examples/optimizer_pipeline")
set_tests_properties(example_optimizer_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spec_cache "/root/repo/build/examples/spec_cache")
set_tests_properties(example_spec_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_commit_demo "/root/repo/build/examples/replicated_commit_demo")
set_tests_properties(example_replicated_commit_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rc_shell "/root/repo/build/examples/rc_shell" "--demo")
set_tests_properties(example_rc_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
