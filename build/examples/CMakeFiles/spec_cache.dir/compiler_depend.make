# Empty compiler generated dependencies file for spec_cache.
# This may be replaced when dependencies are built.
