file(REMOVE_RECURSE
  "CMakeFiles/spec_cache.dir/spec_cache.cpp.o"
  "CMakeFiles/spec_cache.dir/spec_cache.cpp.o.d"
  "spec_cache"
  "spec_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
