# Empty dependencies file for rc_shell.
# This may be replaced when dependencies are built.
