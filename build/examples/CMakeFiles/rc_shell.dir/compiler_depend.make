# Empty compiler generated dependencies file for rc_shell.
# This may be replaced when dependencies are built.
