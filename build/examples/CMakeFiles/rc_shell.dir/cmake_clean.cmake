file(REMOVE_RECURSE
  "CMakeFiles/rc_shell.dir/rc_shell.cpp.o"
  "CMakeFiles/rc_shell.dir/rc_shell.cpp.o.d"
  "rc_shell"
  "rc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
