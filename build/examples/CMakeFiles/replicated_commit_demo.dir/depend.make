# Empty dependencies file for replicated_commit_demo.
# This may be replaced when dependencies are built.
