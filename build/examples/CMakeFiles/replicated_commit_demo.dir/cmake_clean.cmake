file(REMOVE_RECURSE
  "CMakeFiles/replicated_commit_demo.dir/replicated_commit_demo.cpp.o"
  "CMakeFiles/replicated_commit_demo.dir/replicated_commit_demo.cpp.o.d"
  "replicated_commit_demo"
  "replicated_commit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_commit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
