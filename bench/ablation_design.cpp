// Ablations on SpecRPC design choices called out in DESIGN.md:
//
//   A. Multiple predictions per RPC (§2: "Using factories enables the
//      framework to speculate multiple times with different predicted
//      values"). When the client is unsure between k candidate values,
//      predicting all of them trades bandwidth/CPU for latency — the hit
//      rate grows with k.
//
//   B. Server-side prediction hand-off time (empirical Figure 7 analogue):
//      an optimizer-style server specReturns its current best at fraction
//      t/T of its runtime, with correctness P(t) = 1 - exp(-lambda t/T).
//      Sweeping t shows the latency-vs-accuracy trade the §4.2 model
//      optimizes analytically (compare with fig7_optimizer_model).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "workload/microbench.h"
#include "common/rng.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

// --------------------------------------------------------- Ablation A

void ablation_multi_prediction() {
  std::printf("\nAblation A: number of client-side predictions per RPC\n");
  std::printf("RPC result is uniform over 4 candidates; the client predicts "
              "the top-k.\n");
  bench::Table table({"k (predictions)", "hit rate (%)",
                      "mean latency (ms)", "callbacks run / request"});

  constexpr auto kServiceTime = std::chrono::milliseconds(10);
  constexpr int kRequests = 150;
  for (int k = 0; k <= 4; ++k) {
    SimNetwork net;
    SimConfig config;
    SpecEngine server(net.add_node("server"), net.executor(), net.wheel());
    SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
    Rng server_rng(99);
    server.register_method("pick", Handler([&](const ServerCallPtr& call) {
      const std::int64_t choice =
          static_cast<std::int64_t>(server_rng.uniform(4));
      call->finish_after(kServiceTime, Value(choice));
    }));

    double total_ms = 0;
    for (int i = 0; i < kRequests; ++i) {
      ValueList predictions;
      for (int p = 0; p < k; ++p) predictions.emplace_back(p);
      auto factory = []() -> CallbackFn {
        return [](SpecContext&, const Value& v) -> CallbackResult {
          // Dependent 10 ms of local work, modelled as a busy constant.
          return Value(v.as_int() + 100);
        };
      };
      const auto t0 = Clock::now();
      // The dependent operation itself is another 10 ms RPC so latency
      // reflects overlap.
      auto chain = [&]() -> CallbackFactory {
        return [&]() -> CallbackFn {
          return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
            return ctx.call("server", "pick", make_args(v.as_int()), {},
                            nullptr);
          };
        };
      }();
      auto future = client.call("server", "pick", make_args(i),
                                std::move(predictions), chain);
      future->get();
      total_ms += to_ms(Clock::now() - t0);
    }
    const auto stats = client.stats();
    const double hit_rate =
        100.0 * stats.predictions_correct /
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(kRequests));
    table.row({std::to_string(k), bench::fmt(hit_rate, 1),
               bench::fmt(total_ms / kRequests),
               bench::fmt(static_cast<double>(stats.callbacks_spawned) /
                          kRequests, 2)});
    client.begin_shutdown();
    server.begin_shutdown();
  }
  table.print();
  std::printf("Expected: hit rate ~ k/4 * 100%%; latency falls toward 1 "
              "service time as k grows; callbacks (and bandwidth) grow "
              "with k.\n");
}

// --------------------------------------------------------- Ablation B

void ablation_handoff_time() {
  std::printf("\nAblation B: server-side prediction hand-off time "
              "(empirical Figure 7, 2 stages)\n");
  constexpr auto kStageTime = std::chrono::milliseconds(40);
  constexpr double kLambda = 3.0;
  constexpr int kRequests = 120;

  bench::Table table({"handoff t (of T)", "P(t) model", "measured hit (%)",
                      "mean latency (ms)", "speedup vs sequential"});
  const double sequential_ms = 2.0 * to_ms(kStageTime);
  for (double frac : {0.1, 0.2, 0.35, 0.5, 0.7, 0.9}) {
    SimNetwork net;
    SpecEngine stage1(net.add_node("s1"), net.executor(), net.wheel());
    SpecEngine stage2(net.add_node("s2"), net.executor(), net.wheel());
    SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
    Rng rng(12345);

    // Stage 1: specReturns its current best at t = frac*T; the prediction
    // is correct with probability 1 - exp(-lambda * frac).
    stage1.register_method("solve", Handler([&, frac](const ServerCallPtr& c) {
      const std::int64_t optimum = c->args().at(0).as_int() * 2;
      const bool converged = rng.uniform01() < 1.0 - std::exp(-kLambda * frac);
      const std::int64_t best = converged ? optimum : optimum - 1;
      auto self = c;
      c->engine().wheel().schedule_after(
          std::chrono::duration_cast<Duration>(kStageTime * frac),
          [self, best] {
            try {
              self->spec_return(Value(best));
            } catch (const SpeculationAbandoned&) {
            }
          });
      c->finish_after(kStageTime, Value(optimum));
    }));
    stage2.register_method("solve", Handler([&](const ServerCallPtr& c) {
      c->finish_after(kStageTime, Value(c->args().at(0).as_int() + 7));
    }));

    double total_ms = 0;
    for (int i = 0; i < kRequests; ++i) {
      auto factory = []() -> CallbackFn {
        return [](SpecContext& ctx, const Value& sol) -> CallbackResult {
          return ctx.call("s2", "solve", make_args(sol.as_int()), {},
                          nullptr);
        };
      };
      const auto t0 = Clock::now();
      client.call("s1", "solve", make_args(i), {}, factory)->get();
      total_ms += to_ms(Clock::now() - t0);
    }
    const auto stats = client.stats();
    const double mean_ms = total_ms / kRequests;
    table.row({bench::fmt(frac, 2),
               bench::fmt(1.0 - std::exp(-kLambda * frac), 3),
               bench::fmt(100.0 * stats.predictions_correct /
                              std::max<std::uint64_t>(
                                  1, stats.predictions_made), 1),
               bench::fmt(mean_ms), bench::fmt(sequential_ms / mean_ms, 3)});
    client.begin_shutdown();
    stage1.begin_shutdown();
    stage2.begin_shutdown();
  }
  table.print();
  std::printf("Compare the speedup column with fig7_optimizer_model at "
              "lambda=%.0f, 2 stages: the empirical optimum hand-off should "
              "sit near the model's t*.\n", kLambda);
}

// --------------------------------------------------------- Ablation C

void ablation_server_side_prediction() {
  std::printf("\nAblation C: client-side (Fig 2b) vs server-side (Fig 2c) "
              "prediction in the microbenchmark\n");
  std::printf("4 x 10 ms dependent RPCs, 90%% accuracy. Server-side "
              "predictions only help after the hand-off point, so latency "
              "grows with the hand-off fraction.\n");
  bench::Table table({"mode", "handoff (of service)", "mean latency (ms)"});
  {
    wl::MicroConfig config;
    config.flavor = Flavor::kSpec;
    config.correct_rate = 0.9;
    config.seed = 99;
    const auto r = wl::run_microbench(config, bench::warmup(),
                                      bench::measure());
    table.row({"client-side", "-", bench::fmt(r.mean_ms())});
  }
  for (double handoff : {0.1, 0.3, 0.5, 0.8}) {
    wl::MicroConfig config;
    config.flavor = Flavor::kSpec;
    config.correct_rate = 0.9;
    config.server_side_prediction = true;
    config.server_handoff_fraction = handoff;
    config.seed = 99;
    const auto r = wl::run_microbench(config, bench::warmup(),
                                      bench::measure());
    table.row({"server-side", bench::fmt(handoff, 1),
               bench::fmt(r.mean_ms())});
  }
  table.print();
  std::printf("Expected: client-side is fastest (speculation starts before "
              "the request is even sent, Fig 2b); server-side latency "
              "approaches it as the hand-off moves earlier.\n");
}

}  // namespace

int main() {
  bench::banner("Ablations", "SpecRPC design-choice studies");
  ablation_multi_prediction();
  ablation_handoff_time();
  ablation_server_side_prediction();
  return 0;
}
