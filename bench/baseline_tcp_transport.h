// Frozen copy of the pre-multi-reactor TcpTransport, kept verbatim (modulo
// the rename and header-only packaging) as the A/B baseline for perf_tcp.
//
// This is the transport this repo shipped before the reactor shard rework:
// one io thread, a single global mutex held across ::write() syscalls, an
// epoll_ctl re-arm of every connection per 100 ms loop tick, one eventfd
// write per send(), and copy-in/erase-from-front byte buffers. perf_tcp
// measures the rework against exactly this code, so the speedup numbers in
// BENCH_tcp.json are an honest before/after rather than a config-flag
// approximation. Do not "fix" or modernize it.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "common/executor.h"
#include "common/logging.h"
#include "common/strand.h"
#include "transport/transport.h"

namespace srpc::bench {

class BaselineTcpTransport final : public Transport {
 public:
  explicit BaselineTcpTransport(Executor& executor, std::uint16_t port = 0)
      : executor_(executor) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(port);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
      throw std::runtime_error("bind() failed");
    if (listen(listen_fd_, 128) != 0)
      throw std::runtime_error("listen() failed");

    socklen_t len = sizeof(sa);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
    addr_ = "127.0.0.1:" + std::to_string(ntohs(sa.sin_port));
    set_nonblocking(listen_fd_);

    epoll_fd_ = epoll_create1(0);
    wake_fd_ = eventfd(0, EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

    io_thread_ = std::thread([this] { io_loop(); });
  }

  ~BaselineTcpTransport() override {
    stopping_.store(true);
    wake();
    if (io_thread_.joinable()) io_thread_.join();
    for (auto& [fd, conn] : conns_) close(fd);
    close(listen_fd_);
    close(epoll_fd_);
    close(wake_fd_);
  }

  const Address& address() const override { return addr_; }

  bool send(const Address& dst, Bytes payload) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Conn* conn = nullptr;
      auto it = by_peer_.find(dst);
      if (it != by_peer_.end()) {
        conn = conns_.at(it->second).get();
      } else {
        conn = connect_to(dst);
        if (conn == nullptr) {
          SRPC_LOG(WARN) << addr_ << ": connect to " << dst << " failed";
          return false;
        }
      }
      queue_frame(*conn, payload);
    }
    wake();
    return true;
  }

  void set_receiver(Receiver receiver) override {
    std::lock_guard<std::mutex> lock(gate_->mu);
    gate_->receiver = std::move(receiver);
  }

  void quiesce() override {
    std::unique_lock<std::mutex> lock(gate_->mu);
    gate_->cv.wait(lock, [&] { return gate_->in_flight == 0; });
  }

  TrafficStats stats() const {
    TrafficStats s;
    s.msgs_sent = msgs_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.msgs_recv = msgs_recv_.load(std::memory_order_relaxed);
    s.bytes_recv = bytes_recv_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Conn {
    int fd = -1;
    Address peer;
    Bytes inbuf;
    Bytes outbuf;
    std::size_t out_off = 0;
    bool want_write = false;
    std::shared_ptr<Strand> strand;
  };

  static void set_nonblocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  static void set_nodelay(int fd) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  static std::pair<std::string, std::uint16_t> split_addr(
      const Address& addr) {
    const auto pos = addr.find_last_of(':');
    if (pos == std::string::npos)
      throw std::invalid_argument("bad address: " + addr);
    return {addr.substr(0, pos),
            static_cast<std::uint16_t>(std::stoi(addr.substr(pos + 1)))};
  }

  static void put_u32(Bytes& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  static std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
  }

  void wake() {
    std::uint64_t one = 1;
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    [[maybe_unused]] auto n = write(wake_fd_, &one, sizeof(one));
  }

  void queue_frame(Conn& conn, const Bytes& payload) {
    put_u32(conn.outbuf, static_cast<std::uint32_t>(payload.size() + 1));
    conn.outbuf.push_back(0x00);
    conn.outbuf.insert(conn.outbuf.end(), payload.begin(), payload.end());
    conn.want_write = true;
    msgs_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  }

  Conn* connect_to(const Address& dst) {
    const auto [host, port] = split_addr(dst);
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
    set_nonblocking(fd);
    set_nodelay(fd);
    if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 &&
        errno != EINPROGRESS) {
      close(fd);
      return nullptr;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->peer = dst;
    conn->strand = Strand::create(executor_);
    Bytes hello(addr_.begin(), addr_.end());
    put_u32(conn->outbuf, static_cast<std::uint32_t>(hello.size() + 1));
    conn->outbuf.push_back(0x01);
    conn->outbuf.insert(conn->outbuf.end(), hello.begin(), hello.end());
    conn->want_write = true;
    Conn* raw = conn.get();
    conns_.emplace(fd, std::move(conn));
    by_peer_.emplace(dst, fd);
    return raw;
  }

  void io_loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (!stopping_.load()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [fd, conn] : conns_) {
          epoll_event ev{};
          ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
          ev.data.fd = fd;
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0 &&
              errno == ENOENT) {
            epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
          }
        }
      }
      const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 100);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          std::uint64_t buf;
          [[maybe_unused]] auto r = read(wake_fd_, &buf, sizeof(buf));
          continue;
        }
        if (fd == listen_fd_) {
          for (;;) {
            const int cfd = accept(listen_fd_, nullptr, nullptr);
            if (cfd < 0) break;
            set_nonblocking(cfd);
            set_nodelay(cfd);
            auto conn = std::make_unique<Conn>();
            conn->fd = cfd;
            conn->strand = Strand::create(executor_);
            std::lock_guard<std::mutex> lock(mu_);
            conns_.emplace(cfd, std::move(conn));
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = cfd;
            epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
          }
          continue;
        }
        Conn* conn = nullptr;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = conns_.find(fd);
          if (it == conns_.end()) continue;
          conn = it->second.get();
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (events[i].events & EPOLLOUT) handle_writable(*conn);
        if (events[i].events & EPOLLIN) handle_readable(*conn);
      }
    }
  }

  void handle_writable(Conn& conn) {
    std::lock_guard<std::mutex> lock(mu_);
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.out_off,
                                conn.outbuf.size() - conn.out_off);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        return;
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    conn.want_write = false;
  }

  void handle_readable(Conn& conn) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n == 0) {
        close_conn(conn.fd);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn.fd);
        return;
      }
      conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
    }
    std::size_t off = 0;
    for (;;) {
      if (conn.inbuf.size() - off < 4) break;
      const std::uint32_t len = get_u32(conn.inbuf.data() + off);
      if (conn.inbuf.size() - off - 4 < len) break;
      const std::uint8_t* frame = conn.inbuf.data() + off + 4;
      off += 4 + len;
      if (len == 0) continue;
      const std::uint8_t marker = frame[0];
      if (marker == 0x01) {
        Address peer(reinterpret_cast<const char*>(frame + 1), len - 1);
        std::lock_guard<std::mutex> lock(mu_);
        conn.peer = peer;
        by_peer_.emplace(peer, conn.fd);
        continue;
      }
      Bytes payload(frame + 1, frame + len);
      Address src;
      {
        std::lock_guard<std::mutex> lock(mu_);
        src = conn.peer;
      }
      msgs_recv_.fetch_add(1, std::memory_order_relaxed);
      bytes_recv_.fetch_add(payload.size(), std::memory_order_relaxed);
      if (!src.empty()) {
        auto shared = std::make_shared<Bytes>(std::move(payload));
        conn.strand->post([gate = gate_, src, shared]() mutable {
          Receiver receiver;
          {
            std::lock_guard<std::mutex> lock(gate->mu);
            if (!gate->receiver) return;
            receiver = gate->receiver;
            ++gate->in_flight;
          }
          receiver(src, std::move(*shared));
          {
            std::lock_guard<std::mutex> lock(gate->mu);
            --gate->in_flight;
          }
          gate->cv.notify_all();
        });
      }
    }
    if (off > 0)
      conn.inbuf.erase(conn.inbuf.begin(), conn.inbuf.begin() + off);
  }

  void close_conn(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    if (!it->second->peer.empty()) by_peer_.erase(it->second->peer);
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    conns_.erase(it);
  }

  struct RecvGate {
    std::mutex mu;
    std::condition_variable cv;
    Receiver receiver;
    int in_flight = 0;
  };

  Executor& executor_;
  Address addr_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread io_thread_;
  std::shared_ptr<RecvGate> gate_ = std::make_shared<RecvGate>();

  mutable std::mutex mu_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<Address, int> by_peer_;

  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_recv_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace srpc::bench
