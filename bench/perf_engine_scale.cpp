// Engine lock-decomposition bench (DESIGN.md §6): calls/s through a
// client/server SpecEngine pair as client threads scale 1 -> 16, sharded
// engine vs the same build pinned to shards=1 (the historical single-lock /
// single-concurrency-domain engine, reproduced exactly by
// SpecConfig::shards = 1). Writes BENCH_engine.json (cwd).
//
// The transport is a bench-local inline-delivery pipe: send() invokes the
// peer's receiver on the calling thread, so the bench measures engine
// locking, not network machinery. This is safe precisely because the engine
// sends with no locks held; with the old global-lock engine an inline
// transport would deadlock (cross-engine A->B->A lock acquisition), which is
// why shards=1 reproduces the old *concurrency domain* on the new lock-free
// send path.
//
// Workload: a fixed background population of long-lived speculative
// computations parked in spec_block (the paper's multi-level chains waiting
// on a slow dependency), plus hot client threads hammering fast predicted
// calls. With one shared concurrency domain (N=1) every hot-call validation
// notify_all()s every parked computation in the process — O(parked) futex
// wakeups and mutex reacquisitions per call, all stealing the one core from
// productive work — and every tree operation crosses the same mutex. With
// per-tree control blocks the parked chains are simply never touched by
// unrelated traffic. This is the lock convoy + thundering herd the shard
// decomposition removes.
//
// Env knobs:
//   SPECRPC_ENGINE_SCALE_SECS     seconds per measured point (default 1.0)
//   SPECRPC_ENGINE_SCALE_THREADS  comma list (default "1,2,4,8,16")
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/executor.h"
#include "common/timer_wheel.h"
#include "common/types.h"
#include "specrpc/engine.h"
#include "transport/transport.h"

namespace {

using namespace srpc;
using namespace srpc::spec;

constexpr int kOutstandingPerThread = 1;
constexpr int kParkedComputations = 256;

/// Zero-latency pipe: send() posts the peer's delivery to the shared
/// executor (the receiver runs asynchronously, like a real transport, so a
/// call's speculative callback genuinely parks in spec_block before the
/// actual response is processed). Thread-safe; quiesce() is a real barrier.
class DirectTransport final : public Transport {
 public:
  DirectTransport(Address addr, Executor& executor)
      : addr_(std::move(addr)), executor_(executor) {}

  void peer(DirectTransport* p) { peer_ = p; }

  const Address& address() const override { return addr_; }

  bool send(const Address&, Bytes payload) override {
    DirectTransport* p = peer_;
    if (p != nullptr) p->deliver(addr_, std::move(payload));
    return p != nullptr;
  }

  void set_receiver(Receiver receiver) override {
    std::lock_guard<std::mutex> lock(mu_);
    receiver_ = std::make_shared<Receiver>(std::move(receiver));
  }

  void quiesce() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

 private:
  void deliver(const Address& src, Bytes payload) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++in_flight_;
    }
    const bool posted =
        executor_.post([this, src, payload = std::move(payload)]() mutable {
          // Re-read the receiver at run time so set_receiver(nullptr) +
          // quiesce() is a real barrier even for queued deliveries.
          std::shared_ptr<Receiver> r;
          {
            std::lock_guard<std::mutex> lock(mu_);
            r = receiver_;
          }
          if (r != nullptr && *r) (*r)(src, std::move(payload));
          {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
          }
          cv_.notify_all();
        });
    if (!posted) {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      cv_.notify_all();
    }
  }

  Address addr_;
  Executor& executor_;
  DirectTransport* peer_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Receiver> receiver_;
  int in_flight_ = 0;
};

CallbackFactory blocking_factory() {
  return []() -> CallbackFn {
    return [](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.spec_block();  // park until validated — the dependent-op pattern
      return v;
    };
  };
}

CallbackFactory passthrough_factory() {
  return []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
}

/// Calls/s sustained by `threads` client threads, each keeping
/// kOutstandingPerThread predicted calls in flight, for ~secs seconds.
double calls_per_sec(std::size_t shards, int threads, double secs) {
  // Generous pool: parked spec_block callbacks occupy worker threads
  // (before_block republishes queued work but does not add threads).
  Executor executor(kParkedComputations + 32, "engine-scale");
  DirectTransport client_pipe("client", executor);
  DirectTransport server_pipe("server", executor);
  client_pipe.peer(&server_pipe);
  server_pipe.peer(&client_pipe);
  TimerWheel wheel;
  SpecConfig config;
  config.shards = shards;
  config.call_timeout = Duration::zero();  // no timer churn in the loop
  SpecEngine client(client_pipe, executor, wheel, config);
  SpecEngine server(server_pipe, executor, wheel, config);
  server.register_method("inc", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args()[0].as_int() + 1));
  }));
  // The slow dependency the background chains wait on; it resolves long
  // after the measure window (shutdown unparks the chains).
  server.register_method("slow", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::seconds(60), Value(0));
  }));

  // Park the background computations: correctly-predicted calls whose
  // callbacks spec_block until validation, which only comes at t=60s.
  std::vector<SpecFuturePtr> parked;
  parked.reserve(kParkedComputations);
  for (int p = 0; p < kParkedComputations; ++p) {
    parked.push_back(client.call("server", "slow", make_args(p), {Value(0)},
                                 blocking_factory()));
  }
  // Let every parked callback reach its spec_block wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::int64_t arg = t * 1'000'000;
      std::vector<SpecFuturePtr> batch;
      batch.reserve(kOutstandingPerThread);
      while (!stop.load(std::memory_order_relaxed)) {
        batch.clear();
        for (int k = 0; k < kOutstandingPerThread; ++k, ++arg) {
          batch.push_back(client.call("server", "inc", make_args(arg),
                                      {Value(arg + 1)},
                                      passthrough_factory()));
        }
        for (auto& f : batch) f->get();
        completed.fetch_add(kOutstandingPerThread,
                            std::memory_order_relaxed);
      }
    });
  }

  const double warmup = secs * 0.25;
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  const std::uint64_t base = completed.load();
  const TimePoint start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  const std::uint64_t done = completed.load() - base;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  stop.store(true);
  for (auto& w : workers) w.join();
  client.begin_shutdown();
  server.begin_shutdown();
  executor.shutdown();
  return static_cast<double>(done) / elapsed;
}

std::vector<int> thread_counts() {
  const std::string spec =
      env_str("SPECRPC_ENGINE_SCALE_THREADS", "1,2,4,8,16");
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main() {
  const double secs = env_double("SPECRPC_ENGINE_SCALE_SECS", 1.0);
  const std::vector<int> threads = thread_counts();

  std::printf("engine scaling: %d outstanding calls per client thread, "
              "%.1fs per point\n\n", kOutstandingPerThread, secs);
  std::printf("%8s %18s %18s %8s\n", "threads", "shards=1 calls/s",
              "sharded calls/s", "ratio");

  std::vector<double> single(threads.size()), sharded(threads.size());
  std::size_t auto_shards = 0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    single[i] = calls_per_sec(/*shards=*/1, threads[i], secs);
    {
      // Report the auto-sized shard count once (0 = auto).
      Executor probe_exec(1, "probe");
      DirectTransport probe_pipe("probe", probe_exec);
      TimerWheel probe_wheel;
      SpecEngine probe(probe_pipe, probe_exec, probe_wheel, SpecConfig{});
      auto_shards = probe.shard_count();
      probe.begin_shutdown();
      probe_exec.shutdown();
    }
    sharded[i] = calls_per_sec(/*shards=*/0, threads[i], secs);
    std::printf("%8d %18.0f %18.0f %7.2fx\n", threads[i], single[i],
                sharded[i], sharded[i] / single[i]);
  }

  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_engine.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"outstanding_per_thread\": %d,\n"
               "  \"sharded_shard_count\": %zu,\n  \"points\": [\n",
               kOutstandingPerThread, auto_shards);
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::fprintf(f,
                 "    {\"client_threads\": %d, "
                 "\"single_shard_calls_per_sec\": %.0f, "
                 "\"sharded_calls_per_sec\": %.0f, \"ratio\": %.3f}%s\n",
                 threads[i], single[i], sharded[i], sharded[i] / single[i],
                 i + 1 < threads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_engine.json\n");
  return 0;
}
