// Figure 8b: mean request completion time versus the number of dependent
// RPCs per request, at a 90% per-RPC correct-prediction rate.
//
// Paper shape: gRPC and TradRPC grow linearly with chain length; SpecRPC
// grows only slightly (only mispredicted links serialize).
#include <cstdio>

#include "bench_util.h"
#include "workload/microbench.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 8b",
                "request completion vs # RPCs per request (90% predictions)");

  bench::Table table({"# RPCs/request", "gRPC (ms)", "TradRPC (ms)",
                      "SpecRPC (ms)"});
  for (int chain : {1, 2, 4, 6, 8, 10}) {
    std::vector<std::string> row{std::to_string(chain)};
    for (Flavor flavor : kAllFlavors) {
      wl::MicroConfig config;
      config.flavor = flavor;
      config.rpcs_per_request = chain;
      config.service_time = from_ms(10.0);
      config.correct_rate = 0.9;
      config.seed = 31 + static_cast<std::uint64_t>(chain);
      const auto result =
          wl::run_microbench(config, bench::warmup(), bench::measure());
      row.push_back(bench::fmt(result.mean_ms()));
    }
    table.row(row);
  }
  table.print();
  std::printf("\nPaper shape: baselines linear in chain length; SpecRPC "
              "nearly flat.\n");
  return 0;
}
