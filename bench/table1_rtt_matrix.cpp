// Table 1: round-trip latencies between the three datacentres (Oregon,
// Ireland, Seoul) that all Replicated Commit experiments emulate.
//
// This bench verifies the emulation: it measures application-level RTTs
// through the full stack (TradRPC echo over the simulated geo-network) and
// compares them against the configured matrix.
#include <cstdio>

#include "bench_util.h"
#include "rpc/node.h"
#include "transport/geo.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Table 1", "emulated inter-datacentre RTTs");

  GeoConfig geo;  // Table 1 defaults
  geo.scale = latency_scale();
  SimNetwork net;
  GeoTopology topo(net, geo);

  std::vector<std::unique_ptr<rpc::Node>> nodes;
  for (int dc = 0; dc < topo.num_dcs(); ++dc) {
    Transport& transport = topo.add_machine(dc, "probe");
    nodes.push_back(std::make_unique<rpc::Node>(transport, net.executor(),
                                                net.wheel()));
    nodes.back()->register_method(
        "echo", [](const rpc::CallContext&, ValueList args,
                   rpc::Responder responder) {
          responder.finish(args.empty() ? Value() : args[0]);
        });
  }

  bench::Table table({"pair", "configured RTT (ms)", "measured RTT (ms)",
                      "paper (ms, de-scaled)"});
  constexpr int kProbes = 20;
  for (int a = 0; a < topo.num_dcs(); ++a) {
    for (int b = a + 1; b < topo.num_dcs(); ++b) {
      double total_ms = 0;
      for (int i = 0; i < kProbes; ++i) {
        const auto t0 = Clock::now();
        nodes[a]->call_sync(topo.address(b, "probe"), "echo",
                            {Value("ping")});
        total_ms += to_ms(Clock::now() - t0);
      }
      const double measured = total_ms / kProbes;
      table.row({geo.dc_names[a] + "-" + geo.dc_names[b],
                 bench::fmt(geo.dc_rtt_ms[a][b] * geo.scale),
                 bench::fmt(measured),
                 bench::fmt(measured / geo.scale, 1)});
    }
  }
  table.print();
  std::printf("\nPaper values: Oregon-Ireland 140, Oregon-Seoul 122, "
              "Ireland-Seoul 243 ms.\n");
  return 0;
}
