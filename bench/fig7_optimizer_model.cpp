// Figure 7: maximum speedup S_tat versus lambda (unit 1/T) for 2-5 stages
// of the multi-objective optimizer model (§4.2, Equations (1)-(5)).
//
// Paper shape: all curves start at 1 as lambda -> 0; for a fixed lambda the
// speedup grows with the number of stages; at lambda = 9 the 5-stage curve
// reaches roughly 2.1-2.2x, the 2-stage curve about 1.5x.
#include <cstdio>

#include "bench_util.h"
#include "optmodel/model.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 7", "max speedup vs lambda, optimizer model");

  bench::Table table({"lambda (1/T)", "2 stages", "3 stages", "4 stages",
                      "5 stages", "t* (of T)"});
  for (double lambda = 0.5; lambda <= 9.01; lambda += 0.5) {
    std::vector<std::string> row;
    row.push_back(bench::fmt(lambda, 1));
    for (int stages = 2; stages <= 5; ++stages) {
      row.push_back(bench::fmt(opt::max_speedup(stages, lambda), 3));
    }
    row.push_back(bench::fmt(opt::optimal_handoff(lambda, 1.0), 3));
    table.row(row);
  }
  table.print();

  std::printf("\nEquation (5) check at lambda=9: LHS at t* = %.6f (should be"
              " ~0)\n",
              opt::equation5_lhs(9.0, opt::optimal_handoff(9.0, 1.0), 1.0));
  return 0;
}
