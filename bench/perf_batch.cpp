// perf_batch — queue-oriented speculative batch transactions (DESIGN.md
// §12): per-txn 2PC vs batched group commit vs batched + speculative over
// the qstream ordered-stream workload at several conflict rates. Writes
// BENCH_batch.json (cwd).
//
// Three phases:
//
//   correctness  one fixed ordered stream per mode on a fresh cluster; the
//                final replicated state must equal an in-memory serial
//                replay of the committed transactions (the group-commit and
//                speculative paths are only interesting if they preserve
//                exactly the semantics of serial execution).
//   throughput   closed-loop committed-txn/s per mode across a conflict
//                ramp (shrinking hot set shared by every client). The
//                acceptance bar: batched + speculative >= 1.5x per-txn 2PC
//                committed throughput at the highest-conflict point.
//   process      one cross-process data point (ProcessCluster, qstream,
//                speculative) to show the batch path survives real TCP and
//                process boundaries; skipped when rc_cluster_node is not
//                next to this binary.
//
// Env knobs (on top of bench_util's SPECRPC_BENCH_{WARMUP,MEASURE}_S):
//   SPECRPC_BATCH_CLIENTS_PER_DC  closed-loop clients per DC   (default 2)
//   SPECRPC_BATCH_RTT_MS          uniform inter-DC RTT         (default 4)
//   SPECRPC_BATCH_NUM_KEYS        dataset size                 (default 20000)
//   SPECRPC_BATCH_HOTFRACS       comma list of hot fractions  ("0.2,0.5,0.9")
//   SPECRPC_BATCH_SKIP_PROCESS    non-zero skips the process phase
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "batch/client.h"
#include "batch/types.h"
#include "common/env.h"
#include "rc/cluster.h"
#include "rc/process_cluster.h"
#include "workload/qstream.h"
#include "workload/runner.h"

namespace {

using namespace srpc;
using namespace srpc::bench;
using batch::BatchMode;

constexpr BatchMode kModes[] = {BatchMode::kPerTxn2pc, BatchMode::kGroupCommit,
                                BatchMode::kSpeculative};

rc::ClusterConfig cluster_config(BatchMode mode, int clients_per_dc,
                                 std::size_t num_keys, double rtt_ms) {
  rc::ClusterConfig config;
  // Only the speculative path needs engines; the baselines run on the
  // TradRPC kit, which is exactly what "per-txn 2PC" means as a baseline.
  config.flavor =
      mode == BatchMode::kSpeculative ? Flavor::kSpec : Flavor::kTrad;
  config.geo = uniform_geo(rtt_ms);
  config.geo.lan_rtt_ms = 0.2;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = num_keys;
  config.batch_clients = true;
  config.batch_mode = mode;
  return config;
}

wl::QStreamConfig qstream_config(std::size_t num_keys, std::size_t hot_keys,
                                 double hot_fraction) {
  wl::QStreamConfig wc;
  wc.txns_per_epoch = 32;
  wc.ops_per_txn = 4;
  wc.num_keys = num_keys;
  wc.hot_keys = hot_keys;
  wc.hot_fraction = hot_fraction;
  wc.cross_partition_fraction = 0.3;
  return wc;
}

// ---------------------------------------------------------- correctness

/// Serial-execution reference: committed transactions applied in batch
/// order with write-buffer semantics (mirrors batch::BatchClient::compute
/// and the replicated apply path; see tests/test_batch.cc).
class SerialReplay {
 public:
  explicit SerialReplay(std::string initial) : initial_(std::move(initial)) {}

  void apply(const batch::BatchTxn& txn) {
    std::map<std::string, std::string> buffer;
    for (const auto& op : txn.ops) {
      if (op.kind == batch::OpKind::kWrite) {
        buffer[op.key] = op.value;
        continue;
      }
      const std::string current = [&] {
        auto bit = buffer.find(op.key);
        if (bit != buffer.end()) return bit->second;
        auto it = state_.find(op.key);
        return it != state_.end() ? it->second : initial_;
      }();
      if (op.kind == batch::OpKind::kRmw) {
        buffer[op.key] = batch::apply_transform(op.transform, current, op.value);
      }
    }
    for (auto& [key, value] : buffer) state_[key] = value;
  }

  const std::map<std::string, std::string>& state() const { return state_; }

 private:
  std::string initial_;
  std::map<std::string, std::string> state_;
};

/// Polls every replica of every expected key until it matches (decide
/// broadcasts are asynchronous) or the deadline passes.
bool converged(rc::RcCluster& cluster,
               const std::map<std::string, std::string>& expected) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  const auto view = cluster.view();
  for (const auto& [key, value] : expected) {
    const int shard = view->shard_of(key);
    for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
      for (;;) {
        auto got = cluster.store(dc, shard).get(key);
        if (got.has_value() && got->value == value) break;
        if (Clock::now() > deadline) {
          std::fprintf(stderr,
                       "  divergence: dc%d shard%d %s = '%s', expected '%s'\n",
                       dc, shard, key.c_str(),
                       got ? got->value.c_str() : "<missing>", value.c_str());
          return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
  return true;
}

/// One fixed single-client stream through `mode`; true iff every txn
/// committed and the replicated state equals the serial replay.
bool run_correctness(BatchMode mode, std::size_t num_keys, double rtt_ms) {
  rc::RcCluster cluster(
      cluster_config(mode, /*clients_per_dc=*/1, num_keys, rtt_ms));
  auto& client = cluster.batch_client(0, 0);

  wl::QStreamConfig wc = qstream_config(num_keys, /*hot_keys=*/4,
                                        /*hot_fraction=*/0.7);
  wc.txns_per_epoch = 16;
  wl::QStreamWorkload workload(wc, /*seed=*/7);
  SerialReplay replay(std::string(16, 'v'));

  bool all_committed = true;
  for (int epoch = 0; epoch < 4; ++epoch) {
    auto txns = workload.next_epoch();
    const auto reference = txns;  // run_epoch consumes the batch
    batch::EpochResult result = client.run_epoch(std::move(txns));
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (i < result.decisions.size() && result.decisions[i]) {
        replay.apply(reference[i]);
      } else {
        all_committed = false;  // single client: nothing should abort
      }
    }
  }
  return all_committed && converged(cluster, replay.state());
}

// ----------------------------------------------------------- throughput

struct ModeResult {
  double committed_per_s = 0;
  double abort_rate = 0;
  std::uint64_t epochs = 0;
  double mean_epoch_ms = 0;
  double p99_epoch_ms = 0;
  double mean_commit_ms = 0;
  // Speculative mode only: seeded-prediction outcome counters.
  std::uint64_t predictions_made = 0;
  std::uint64_t predictions_correct = 0;
  std::uint64_t predictions_incorrect = 0;
};

ModeResult run_throughput(BatchMode mode, double hot_fraction,
                          int clients_per_dc, std::size_t num_keys,
                          double rtt_ms) {
  rc::RcCluster cluster(
      cluster_config(mode, clients_per_dc, num_keys, rtt_ms));
  const wl::QStreamConfig wc =
      qstream_config(num_keys, /*hot_keys=*/4, hot_fraction);
  wl::BatchWorkloadFactory factory = [wc](int client_index) {
    auto workload = std::make_shared<wl::QStreamWorkload>(
        wc, 1000 + static_cast<std::uint64_t>(client_index));
    return [workload] { return workload->next_epoch(); };
  };
  const wl::BatchRunResult r =
      wl::run_batch_closed_loop(cluster, factory, warmup(), measure());

  ModeResult out;
  out.committed_per_s = r.committed_per_s();
  out.abort_rate = r.abort_rate();
  out.epochs = r.epochs;
  out.mean_epoch_ms = r.epoch_latency.mean_ms();
  out.p99_epoch_ms = r.epoch_latency.percentile_ms(99);
  out.mean_commit_ms = r.commit_latency.mean_ms();
  const spec::SpecStats spec = cluster.spec_stats();
  out.predictions_made = spec.predictions_made;
  out.predictions_correct = spec.predictions_correct;
  out.predictions_incorrect = spec.predictions_incorrect;
  return out;
}

std::vector<double> hot_fracs() {
  const std::string spec = env_str("SPECRPC_BATCH_HOTFRACS", "0.2,0.5,0.9");
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main() {
  banner("perf_batch",
         "queue-oriented batch transactions: 2PC vs group commit vs "
         "speculative");

  const int clients_per_dc =
      static_cast<int>(env_long("SPECRPC_BATCH_CLIENTS_PER_DC", 2));
  const double rtt_ms = env_double("SPECRPC_BATCH_RTT_MS", 4.0);
  const std::size_t num_keys =
      static_cast<std::size_t>(env_long("SPECRPC_BATCH_NUM_KEYS", 20'000));
  const std::vector<double> fracs = hot_fracs();

  // Phase 1: serial-equivalence check per mode.
  std::printf("correctness (fixed stream vs serial replay):\n");
  bool state_match[3] = {false, false, false};
  for (int m = 0; m < 3; ++m) {
    state_match[m] = run_correctness(kModes[m], num_keys, rtt_ms);
    std::printf("  %-12s %s\n", batch::to_string(kModes[m]),
                state_match[m] ? "state == serial replay" : "DIVERGED");
  }

  // Phase 2: conflict ramp.
  std::printf("\nthroughput ramp: %d clients/DC, rtt %.1fms, hot_keys=4\n\n",
              clients_per_dc, rtt_ms);
  std::printf("%8s %12s %12s %12s %9s %9s\n", "hot", "2pc txn/s", "group/s",
              "spec/s", "x group", "x spec");

  struct Point {
    double hot_fraction = 0;
    ModeResult modes[3];
  };
  std::vector<Point> points;
  points.reserve(fracs.size());
  for (const double hot : fracs) {
    Point p;
    p.hot_fraction = hot;
    for (int m = 0; m < 3; ++m) {
      p.modes[m] =
          run_throughput(kModes[m], hot, clients_per_dc, num_keys, rtt_ms);
    }
    const double base = p.modes[0].committed_per_s;
    std::printf("%7.2f %12.0f %12.0f %12.0f %8.2fx %8.2fx\n", hot,
                p.modes[0].committed_per_s, p.modes[1].committed_per_s,
                p.modes[2].committed_per_s,
                base > 0 ? p.modes[1].committed_per_s / base : 0,
                base > 0 ? p.modes[2].committed_per_s / base : 0);
    points.push_back(p);
  }

  // Acceptance at the highest-conflict point (ISSUE 8): batched +
  // speculative >= 1.5x the per-txn 2PC committed throughput.
  const Point& peak = points.back();
  const double base = peak.modes[0].committed_per_s;
  const double speedup_spec =
      base > 0 ? peak.modes[2].committed_per_s / base : 0;
  const double speedup_group =
      base > 0 ? peak.modes[1].committed_per_s / base : 0;
  const bool accept = speedup_spec >= 1.5;
  const bool all_match = state_match[0] && state_match[1] && state_match[2];
  std::printf("\npeak hot=%.2f: speculative %.2fx per-txn 2PC "
              "(accept>=1.5x: %s), states match serial: %s\n",
              peak.hot_fraction, speedup_spec, accept ? "yes" : "NO",
              all_match ? "yes" : "NO");

  // Phase 3: one cross-process speculative point over real TCP.
  bool process_ran = false, process_ok = false;
  double process_per_s = 0, process_abort = 0;
  if (env_long("SPECRPC_BATCH_SKIP_PROCESS", 0) == 0 &&
      !rc::ProcessCluster::find_node_binary().empty()) {
    rc::ProcessClusterConfig pc;
    pc.flavor = Flavor::kSpec;
    pc.workload = "qstream";
    pc.batch_mode = "speculative";
    pc.clients_per_dc = clients_per_dc;
    pc.num_keys = num_keys;
    pc.hot_keys = 4;
    pc.hot_fraction = fracs.back();
    pc.warmup = warmup();
    pc.measure = measure();
    rc::ProcessCluster proc(pc);
    const rc::ProcessClusterResult r = proc.run();
    process_ran = true;
    process_ok = r.ok;
    process_per_s = r.committed_per_s();
    const auto total = r.committed + r.aborted;
    process_abort =
        total > 0 ? static_cast<double>(r.aborted) / total : 0;
    std::printf("\ncross-process (speculative, hot=%.2f): %s, %.0f txn/s\n",
                fracs.back(), r.ok ? "ok" : r.error.c_str(), process_per_s);
  } else {
    std::printf("\ncross-process point skipped (no rc_cluster_node)\n");
  }

  FILE* f = std::fopen("BENCH_batch.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_batch.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"clients_per_dc\": %d,\n  \"rtt_ms\": %.1f,\n"
               "  \"num_keys\": %zu,\n  \"txns_per_epoch\": 32,\n"
               "  \"correctness\": {\"per_txn_2pc\": %s, "
               "\"group_commit\": %s, \"speculative\": %s},\n"
               "  \"points\": [\n",
               clients_per_dc, rtt_ms, num_keys,
               state_match[0] ? "true" : "false",
               state_match[1] ? "true" : "false",
               state_match[2] ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f, "    {\"hot_fraction\": %.3f,\n", p.hot_fraction);
    for (int m = 0; m < 3; ++m) {
      const ModeResult& r = p.modes[m];
      std::fprintf(
          f,
          "     \"%s\": {\"committed_per_s\": %.0f, \"abort_rate\": %.4f, "
          "\"epochs\": %llu,\n"
          "       \"mean_epoch_ms\": %.3f, \"p99_epoch_ms\": %.3f, "
          "\"mean_commit_ms\": %.3f,\n"
          "       \"predictions_made\": %llu, \"predictions_correct\": %llu, "
          "\"predictions_incorrect\": %llu}%s\n",
          batch::to_string(kModes[m]), r.committed_per_s, r.abort_rate,
          static_cast<unsigned long long>(r.epochs), r.mean_epoch_ms,
          r.p99_epoch_ms, r.mean_commit_ms,
          static_cast<unsigned long long>(r.predictions_made),
          static_cast<unsigned long long>(r.predictions_correct),
          static_cast<unsigned long long>(r.predictions_incorrect),
          m + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"peak_hot_fraction\": %.3f,\n"
               "  \"peak_speedup_group\": %.3f,\n"
               "  \"peak_speedup_speculative\": %.3f,\n"
               "  \"accept_speculative_1p5x\": %s,\n"
               "  \"accept_states_match_serial\": %s,\n"
               "  \"process\": {\"ran\": %s, \"ok\": %s, "
               "\"committed_per_s\": %.0f, \"abort_rate\": %.4f}\n}\n",
               peak.hot_fraction, speedup_group, speedup_spec,
               accept ? "true" : "false", all_match ? "true" : "false",
               process_ran ? "true" : "false", process_ok ? "true" : "false",
               process_per_s, process_abort);
  std::fclose(f);
  std::printf("wrote BENCH_batch.json\n");
  // Exit 0 regardless: sanitizer smokes run this binary with tiny windows
  // where the ratios are noise; the JSON records the acceptance verdicts.
  return 0;
}
