// Goodput vs. loss rate under the retry/deadline layer. Writes
// BENCH_faults.json (cwd).
//
// Two rpc::Node endpoints on a SimNetwork exchange echo calls from several
// closed-loop client threads. For each loss rate the bench reports completed
// calls/sec and the failure fraction; the 0%-loss point is measured both
// with retries disabled and enabled, so the policy's bookkeeping overhead on
// the fault-free fast path is visible directly (ISSUE acceptance: retry adds
// no measurable overhead at 0% loss).
//
// Env knobs:
//   SPECRPC_FAULTS_SECS     seconds per measured point (default 1.0)
//   SPECRPC_FAULTS_THREADS  closed-loop client threads (default 8)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/types.h"
#include "rpc/node.h"
#include "transport/sim_network.h"

namespace {

using srpc::FaultCfg;
using srpc::SimConfig;
using srpc::SimNetwork;
using srpc::Value;
using srpc::rpc::Node;
using srpc::rpc::NodeConfig;
using srpc::rpc::RpcError;

struct Point {
  std::string label;
  double loss = 0;
  bool retry = false;
  double goodput = 0;   // completed calls/sec across all threads
  double fail_frac = 0; // calls that exhausted the deadline
};

Point run_point(const std::string& label, double loss, bool retry) {
  const double secs = srpc::env_double("SPECRPC_FAULTS_SECS", 1.0);
  const int threads = static_cast<int>(
      srpc::env_long("SPECRPC_FAULTS_THREADS", 8));

  SimConfig sim_config;
  sim_config.default_delay = std::chrono::microseconds(200);
  SimNetwork net(sim_config);
  Node server(net.add_node("server"), net.executor(), net.wheel());
  server.register_method(
      "echo", [](const srpc::rpc::CallContext&, srpc::ValueList args,
                 srpc::rpc::Responder responder) {
        responder.finish(args.empty() ? Value() : args[0]);
      });

  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(200);
  if (retry) {
    config.retry.max_attempts = 4;
    config.retry.attempt_timeout = std::chrono::milliseconds(5);
    config.retry.initial_backoff = std::chrono::milliseconds(1);
    config.retry.max_backoff = std::chrono::milliseconds(10);
  }
  Node client(net.add_node("client"), net.executor(), net.wheel(), config);

  if (loss > 0) {
    FaultCfg faults;
    faults.drop_prob = loss;
    net.set_faults("client", "server", faults);
    net.set_faults("server", "client", faults);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          client.call_sync("server", "echo", {Value(static_cast<int>(t)),
                                              Value(static_cast<int>(i++))});
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const RpcError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // warmup
  ok.store(0);
  failed.store(0);
  const auto t0 = srpc::Clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration_cast<srpc::Duration>(
          std::chrono::duration<double>(secs)));
  const std::uint64_t done = ok.load();
  const std::uint64_t bad = failed.load();
  const double elapsed = srpc::to_ms(srpc::Clock::now() - t0) / 1000.0;
  stop.store(true);
  for (auto& w : workers) w.join();

  Point p;
  p.label = label;
  p.loss = loss;
  p.retry = retry;
  p.goodput = static_cast<double>(done) / elapsed;
  p.fail_frac = done + bad == 0
                    ? 0.0
                    : static_cast<double>(bad) / static_cast<double>(done + bad);
  return p;
}

}  // namespace

int main() {
  std::vector<Point> points;
  points.push_back(run_point("loss0_noretry", 0.0, false));
  points.push_back(run_point("loss0_retry", 0.0, true));
  points.push_back(run_point("loss1_retry", 0.01, true));
  points.push_back(run_point("loss5_retry", 0.05, true));

  srpc::bench::Table table({"point", "loss", "retry", "goodput calls/s",
                            "failed frac"});
  for (const auto& p : points) {
    char goodput[32], fail[32], loss[16];
    std::snprintf(goodput, sizeof(goodput), "%.0f", p.goodput);
    std::snprintf(fail, sizeof(fail), "%.4f", p.fail_frac);
    std::snprintf(loss, sizeof(loss), "%.0f%%", p.loss * 100.0);
    table.row({p.label, loss, p.retry ? "on" : "off", goodput, fail});
  }
  table.print();

  FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_faults.json");
    return 1;
  }
  std::fprintf(f, "{\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"loss\": %.2f, \"retry\": %s, "
                 "\"goodput_calls_per_sec\": %.0f, \"failed_frac\": %.4f}%s\n",
                 p.label.c_str(), p.loss, p.retry ? "true" : "false",
                 p.goodput, p.fail_frac, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_faults.json\n");
  return 0;
}
