// Table 2: the Retwis transaction profile (from Zhang et al. [46]) used by
// the Figure 11-13 experiments. This bench validates the workload generator
// empirically: transaction mix, get/put counts per type.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "workload/retwis.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Table 2", "Retwis transaction profile (generator check)");

  wl::RetwisConfig config;
  wl::RetwisWorkload workload(config, 42);

  struct PerType {
    std::uint64_t txns = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t min_gets = ~0ULL;
    std::uint64_t max_gets = 0;
  };
  std::map<wl::RetwisTxnType, PerType> by_type;
  constexpr std::uint64_t kTxns = 200'000;
  for (std::uint64_t i = 0; i < kTxns; ++i) {
    const auto txn = workload.next_txn();
    auto& t = by_type[txn.type];
    t.txns++;
    std::uint64_t gets = 0;
    for (const auto& op : txn.ops) {
      if (op.is_read) {
        t.gets++;
        gets++;
      } else {
        t.puts++;
      }
    }
    t.min_gets = std::min(t.min_gets, gets);
    t.max_gets = std::max(t.max_gets, gets);
  }

  bench::Table table({"transaction type", "# gets (mean)", "# puts (mean)",
                      "workload% (measured)", "workload% (paper)"});
  const char* expected[] = {"5%", "15%", "30%", "50%"};
  for (auto type :
       {wl::RetwisTxnType::kAddUser, wl::RetwisTxnType::kFollow,
        wl::RetwisTxnType::kPostTweet, wl::RetwisTxnType::kLoadTimeline}) {
    const auto& t = by_type[type];
    std::string gets =
        type == wl::RetwisTxnType::kLoadTimeline
            ? "rand(" + std::to_string(t.min_gets) + "," +
                  std::to_string(t.max_gets) + ") mean " +
                  bench::fmt(static_cast<double>(t.gets) / t.txns, 2)
            : bench::fmt(static_cast<double>(t.gets) / t.txns, 2);
    table.row({to_string(type), gets,
               bench::fmt(static_cast<double>(t.puts) / t.txns, 2),
               bench::fmt(100.0 * t.txns / kTxns, 2) + "%",
               expected[static_cast<int>(type)]});
  }
  table.print();
  std::printf("\nPaper: AddUser 1g/3p 5%%, Follow 2g/2p 15%%, PostTweet "
              "3g/5p 30%%, LoadTimeline rand(1,10)g/0p 50%%.\n");
  return 0;
}
