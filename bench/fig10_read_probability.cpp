// Figure 10: median and 99th-percentile transaction completion time versus
// the probability that an operation is a read (YCSB+T, 5 ops/txn).
//
// Paper shape: for gRPC/TradRPC the median grows linearly with read
// probability and the tail grows faster (tail txns are all-read); SpecRPC's
// median and p99 are largely flat (correct prediction rate > 99%).
#include <cstdio>

#include "rc_bench_util.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 10",
                "RC txn completion median/p99 vs read probability");

  bench::Table table({"read prob", "framework",
                      "median (ms, paper-scale)", "p99 (ms, paper-scale)",
                      "txns"});
  for (double prob : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (Flavor flavor : kAllFlavors) {
      auto config = bench::rc_config(flavor);
      rc::RcCluster cluster(config);
      wl::YcsbtConfig workload;
      workload.ops_per_txn = 5;
      workload.read_fraction = prob;
      workload.zipf_alpha = 0.75;
      workload.num_keys = config.num_keys;
      auto result = wl::run_rc_closed_loop(
          cluster,
          bench::ycsbt_factory(workload,
                               20'000 + static_cast<int>(prob * 100)),
          bench::warmup(), bench::measure());
      table.row({bench::fmt(prob, 1), to_string(flavor),
                 bench::fmt(
                     bench::descale_ms(result.txn_latency.percentile_ms(50)),
                     1),
                 bench::fmt(
                     bench::descale_ms(result.txn_latency.percentile_ms(99)),
                     1),
                 std::to_string(result.committed)});
    }
  }
  table.print();
  std::printf("\nPaper shape: baselines grow with read probability (tail "
              "faster); SpecRPC flat in both median and p99.\n");
  return 0;
}
