// perf_tcp — the TCP transport rebuild, measured. Writes BENCH_tcp.json.
//
// Part 1 (microbench): multi-threaded echo and one-way pipeline over
// loopback, A/B between the frozen pre-PR single-reactor transport
// (bench/baseline_tcp_transport.h) and the multi-reactor rebuild. On this
// container's single core the win is syscall economics, not parallelism:
// the baseline pays an eventfd write per send() plus a global-lock write()
// per frame, the rebuild coalesces a burst into ~1 wakeup and one writev.
// The acceptance bar is >=3x echo msg/s.
//
// Part 2 (cluster): the fig9/fig13 RC workloads run *cross-process* for the
// first time — rc::ProcessCluster forks one server + one client process per
// DC, wired over real TCP. Loopback has no WAN RTT, so the paper's
// geographic asymmetry (local replica answers long before the quorum) is
// reproduced as service-time asymmetry: DC 0 serves reads fast, remote DCs
// slow (ProcessClusterConfig::remote_cost_mult). The paper's orderings must
// survive the real transport:
//   fig9  completion time:  SpecRPC < TradRPC < gRPC
//   fig13 peak throughput:  TradRPC > SpecRPC > gRPC
// The same workload also runs in-process over SimNetwork for the ratio
// column (what crossing real process boundaries costs).
//
// Env knobs: SPECRPC_TCP_THREADS (echo sender threads, default 4),
// SPECRPC_TCP_WINDOW (in-flight cap, default 256), SPECRPC_TCP_SECONDS
// (per-side measure seconds, default 2), SPECRPC_TCP_SKIP_CLUSTER=1 to run
// only the microbenches.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline_tcp_transport.h"
#include "bench_util.h"
#include "rc_bench_util.h"
#include "rc/process_cluster.h"
#include "transport/tcp_transport.h"

namespace srpc::bench {
namespace {

struct MicroResult {
  double msgs_per_s = 0;
  double wakeups_per_msg = 0;
};

/// In-flight window as a bare atomic. A mutex+condvar semaphore here costs
/// a lock and a notify per message — several futex wakes per round trip
/// with 4 senders — which dilutes the transport A/B for both sides.
/// Senders yield when the window is full (this box has one core; spinning
/// would starve the reactor that must drain the window).
class Window {
 public:
  explicit Window(int slots) : slots_(slots) {}
  void acquire() {
    for (;;) {
      int s = slots_.load(std::memory_order_relaxed);
      while (s > 0) {
        if (slots_.compare_exchange_weak(s, s - 1,
                                         std::memory_order_acquire))
          return;
      }
      std::this_thread::yield();
    }
  }
  void release(int n = 1) { slots_.fetch_add(n, std::memory_order_release); }

 private:
  std::atomic<int> slots_;
};

/// Request/response echo: `threads` senders keep `window` frames in flight;
/// the server echoes every frame back. One round trip = one msg counted.
template <typename ClientT, typename ServerT>
MicroResult run_echo(ClientT& client, ServerT& server, int threads, int window,
                     std::size_t payload_size, double seconds) {
  Window credits(window);
  std::atomic<std::uint64_t> done{0};
  server.set_receiver([&server](const Address& src, Bytes payload) {
    server.send(src, std::move(payload));
  });
  client.set_receiver([&](const Address&, Bytes) {
    done.fetch_add(1, std::memory_order_relaxed);
    credits.release();
  });

  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Duration>(
               std::chrono::duration<double>(seconds));
  const auto base = client.stats();
  std::vector<std::thread> senders;
  for (int t = 0; t < threads; ++t) {
    senders.emplace_back([&] {
      while (Clock::now() < deadline) {
        credits.acquire();
        client.send(server.address(), Bytes(payload_size, 0x42));
      }
    });
  }
  for (auto& s : senders) s.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  const auto stats = client.stats();

  // Unhook before the transports are reused/destroyed.
  client.set_receiver(nullptr);
  client.quiesce();
  server.set_receiver(nullptr);
  server.quiesce();

  MicroResult r;
  r.msgs_per_s = static_cast<double>(done.load()) / elapsed;
  const auto sent = stats.msgs_sent - base.msgs_sent;
  r.wakeups_per_msg =
      sent > 0 ? static_cast<double>(stats.wakeups - base.wakeups) /
                     static_cast<double>(sent)
               : 0;
  return r;
}

/// One-way pipeline: senders flood the server under a credit window; the
/// server acks every kAckEvery frames so neither side buffers unboundedly.
template <typename ClientT, typename ServerT>
MicroResult run_pipeline(ClientT& client, ServerT& server, int threads,
                         int window, std::size_t payload_size,
                         double seconds) {
  constexpr int kAckEvery = 64;
  Window credits(window);
  std::atomic<std::uint64_t> received{0};
  server.set_receiver([&](const Address& src, Bytes) {
    const auto n = received.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % kAckEvery == 0) server.send(src, Bytes(1, 0x06));
  });
  client.set_receiver([&](const Address&, Bytes) { credits.release(kAckEvery); });

  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Duration>(
               std::chrono::duration<double>(seconds));
  const auto base = client.stats();
  std::vector<std::thread> senders;
  for (int t = 0; t < threads; ++t) {
    senders.emplace_back([&] {
      while (Clock::now() < deadline) {
        credits.acquire();
        client.send(server.address(), Bytes(payload_size, 0x17));
      }
    });
  }
  for (auto& s : senders) s.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  const auto stats = client.stats();

  client.set_receiver(nullptr);
  client.quiesce();
  server.set_receiver(nullptr);
  server.quiesce();

  MicroResult r;
  r.msgs_per_s = static_cast<double>(received.load()) / elapsed;
  const auto sent = stats.msgs_sent - base.msgs_sent;
  r.wakeups_per_msg =
      sent > 0 ? static_cast<double>(stats.wakeups - base.wakeups) /
                     static_cast<double>(sent)
               : 0;
  return r;
}

struct ClusterRow {
  const char* flavor;
  double tcp_committed_per_s = 0;
  double tcp_mean_ms = 0;
  double sim_committed_per_s = 0;
  double sim_mean_ms = 0;
  bool ok = false;
};

/// Cross-process run (ProcessCluster) + the same workload in-process over
/// SimNetwork for the ratio column.
ClusterRow run_cluster_point(Flavor flavor, bool throughput_mode) {
  ClusterRow row;
  row.flavor = to_string(flavor);

  rc::ProcessClusterConfig pc;
  pc.flavor = flavor;
  pc.clients_per_dc = static_cast<int>(env_long("SPECRPC_CLIENTS_PER_DC", 3));
  pc.num_keys = static_cast<std::size_t>(env_long("SPECRPC_NUM_KEYS", 2'000));
  pc.warmup = std::chrono::milliseconds(300);
  pc.measure = std::chrono::milliseconds(
      static_cast<std::int64_t>(measure_s() * 1000));
  pc.ops_per_txn = 5;
  if (throughput_mode) {
    // fig13 shape: saturated servers; flavour differences are per-request
    // CPU overheads (gRPC marshalling heaviest, SpecRPC bookkeeping light).
    // The paper's fig13 puts gRPC's peak at roughly two-thirds of
    // TradRPC's and SpecRPC just below TradRPC; with saturated servers
    // peak throughput tracks 1/cost, so 1.5/1.06/1.0 reproduces those
    // relative peaks (0.67/0.94/1.0) with margin over loopback run noise.
    pc.server_cores = 2;
    pc.read_fraction = 0.5;
    const double base_us = 600;
    const double mult = flavor == Flavor::kGrpc ? 1.5
                        : flavor == Flavor::kSpec ? 1.06
                                                  : 1.0;
    pc.costs.read = std::chrono::microseconds(
        static_cast<std::int64_t>(base_us * mult));
    pc.costs.prepare = std::chrono::microseconds(
        static_cast<std::int64_t>(base_us * mult / 2));
    pc.costs.apply = pc.costs.prepare;
    pc.costs.commit = pc.costs.prepare;
  } else {
    // fig9 shape: latency-bound dependent reads. The remote-DC service
    // multiplier is the loopback stand-in for WAN RTT (see file header):
    // the quorum is gated on a slow remote read, which TradRPC pays once
    // per dependent read and SpecRPC overlaps via first-response
    // prediction. gRPC additionally pays its per-message overhead.
    pc.read_fraction = 1.0;
    pc.costs.read = std::chrono::milliseconds(2);
    pc.remote_cost_mult = 8.0;
    // The default 75us per-message overhead models LAN gRPC; against this
    // point's WAN-scaled service times (2ms/16ms reads) it vanishes into
    // loopback noise. Scale it like the read costs so the Trad < gRPC gap
    // (~14 messages/txn -> ~5ms) stays visible over run-to-run jitter.
    pc.grpc_overhead_us = 400.0;
  }

  rc::ProcessCluster cluster(pc);
  const auto tcp = cluster.run();
  if (!tcp.ok) {
    std::printf("  ! cross-process %s failed: %s\n", row.flavor,
                tcp.error.c_str());
    return row;
  }
  row.tcp_committed_per_s = tcp.committed_per_s();
  row.tcp_mean_ms = tcp.mean_txn_ms;

  // The in-process twin: same flavour and workload over SimNetwork. WAN
  // emulation comes from the geo matrix here, so server costs stay flat.
  rc::ClusterConfig sim = rc_config(flavor);
  sim.clients_per_dc = pc.clients_per_dc;
  sim.num_keys = pc.num_keys;
  if (throughput_mode) {
    sim.server_cores = pc.server_cores;
    sim.costs = pc.costs;
  }
  wl::YcsbtConfig workload;
  workload.ops_per_txn = pc.ops_per_txn;
  workload.read_fraction = pc.read_fraction;
  workload.num_keys = pc.num_keys;
  {
    rc::RcCluster in_process(sim);
    const auto run = wl::run_rc_closed_loop(
        in_process, ycsbt_factory(workload, /*seed_base=*/1),
        std::chrono::milliseconds(300), pc.measure);
    row.sim_committed_per_s = run.committed_per_s();
    row.sim_mean_ms = run.txn_latency.mean_ms();
  }
  row.ok = true;
  return row;
}

int bench_main() {
  banner("perf_tcp",
         "multi-reactor TCP transport vs frozen single-reactor baseline, "
         "plus cross-process RC (fig9/fig13 orderings)");

  // 16 senders over one core: the deep sender pool keeps frames arriving
  // while the reactor holds the CPU, which is what gives the coalescing
  // paths (stage buffer, batch delivery) real bursts to chew on.
  const int threads = static_cast<int>(env_long("SPECRPC_TCP_THREADS", 16));
  const int window = static_cast<int>(env_long("SPECRPC_TCP_WINDOW", 512));
  const double seconds = env_double("SPECRPC_TCP_SECONDS", 2.0);
  constexpr std::size_t kPayload = 64;

  // Best-of-N trials: one shared core means any background blip (a timer
  // tick, the allocator growing an arena) craters a single trial; the best
  // trial is the least-disturbed measurement of the same steady state.
  const int trials = static_cast<int>(env_long("SPECRPC_TCP_TRIALS", 3));
  auto best = [&](MicroResult& into, const MicroResult& trial) {
    if (trial.msgs_per_s > into.msgs_per_s) into = trial;
  };

  MicroResult echo_base, echo_multi, pipe_base, pipe_multi;
  {
    Executor executor(4, "tcp-bench");
    BaselineTcpTransport client(executor);
    BaselineTcpTransport server(executor);
    for (int t = 0; t < trials; ++t) {
      best(echo_base,
           run_echo(client, server, threads, window, kPayload, seconds));
      best(pipe_base,
           run_pipeline(client, server, threads, window, kPayload, seconds));
    }
  }
  {
    Executor executor(4, "tcp-bench");
    TcpTransport client(executor);
    TcpTransport server(executor);
    for (int t = 0; t < trials; ++t) {
      best(echo_multi,
           run_echo(client, server, threads, window, kPayload, seconds));
      best(pipe_multi,
           run_pipeline(client, server, threads, window, kPayload, seconds));
    }
  }
  const double echo_speedup =
      echo_base.msgs_per_s > 0 ? echo_multi.msgs_per_s / echo_base.msgs_per_s
                               : 0;
  const double pipe_speedup =
      pipe_base.msgs_per_s > 0 ? pipe_multi.msgs_per_s / pipe_base.msgs_per_s
                               : 0;

  Table micro({"bench", "baseline msg/s", "multi-reactor msg/s", "speedup",
               "base wake/msg", "multi wake/msg"});
  micro.row({"echo", fmt(echo_base.msgs_per_s, 0),
             fmt(echo_multi.msgs_per_s, 0), fmt(echo_speedup) + "x",
             fmt(echo_base.wakeups_per_msg, 3),
             fmt(echo_multi.wakeups_per_msg, 3)});
  micro.row({"pipeline", fmt(pipe_base.msgs_per_s, 0),
             fmt(pipe_multi.msgs_per_s, 0), fmt(pipe_speedup) + "x",
             fmt(pipe_base.wakeups_per_msg, 3),
             fmt(pipe_multi.wakeups_per_msg, 3)});
  micro.print();
  std::printf("(acceptance bar: echo speedup >= 3x)\n\n");

  // ---- cross-process RC ----
  std::vector<ClusterRow> fig9, fig13;
  bool fig9_ok = false, fig13_ok = false;
  const bool skip_cluster = env_long("SPECRPC_TCP_SKIP_CLUSTER", 0) != 0;
  const bool have_node = !rc::ProcessCluster::find_node_binary().empty();
  if (!skip_cluster && have_node) {
    std::printf("fig9 cross-process (latency, 5 dependent reads/txn):\n");
    for (Flavor f : kAllFlavors) fig9.push_back(run_cluster_point(f, false));
    Table t9({"flavor", "tcp mean ms", "tcp txn/s", "sim mean ms",
              "tcp/sim latency"});
    for (const auto& r : fig9) {
      t9.row({r.flavor, fmt(r.tcp_mean_ms), fmt(r.tcp_committed_per_s, 0),
              fmt(r.sim_mean_ms),
              r.sim_mean_ms > 0 ? fmt(r.tcp_mean_ms / r.sim_mean_ms) : "-"});
    }
    t9.print();
    // Paper ordering (completion time): SpecRPC < TradRPC < gRPC.
    fig9_ok = fig9.size() == 3 && fig9[0].ok && fig9[1].ok && fig9[2].ok &&
              fig9[2].tcp_mean_ms < fig9[1].tcp_mean_ms &&
              fig9[1].tcp_mean_ms < fig9[0].tcp_mean_ms;
    std::printf("fig9 ordering Spec < Trad < gRPC: %s\n\n",
                fig9_ok ? "PRESERVED" : "VIOLATED");

    std::printf("fig13 cross-process (throughput, 2-core servers):\n");
    for (Flavor f : kAllFlavors) fig13.push_back(run_cluster_point(f, true));
    Table t13({"flavor", "tcp txn/s", "sim txn/s", "tcp/sim tput"});
    for (const auto& r : fig13) {
      t13.row({r.flavor, fmt(r.tcp_committed_per_s, 0),
               fmt(r.sim_committed_per_s, 0),
               r.sim_committed_per_s > 0
                   ? fmt(r.tcp_committed_per_s / r.sim_committed_per_s)
                   : "-"});
    }
    t13.print();
    // Paper ordering (peak throughput): TradRPC > SpecRPC > gRPC.
    fig13_ok = fig13.size() == 3 && fig13[0].ok && fig13[1].ok &&
               fig13[2].ok &&
               fig13[1].tcp_committed_per_s > fig13[2].tcp_committed_per_s &&
               fig13[2].tcp_committed_per_s > fig13[0].tcp_committed_per_s;
    std::printf("fig13 ordering Trad > Spec > gRPC: %s\n\n",
                fig13_ok ? "PRESERVED" : "VIOLATED");
  } else {
    std::printf("cross-process RC skipped (%s)\n\n",
                skip_cluster ? "SPECRPC_TCP_SKIP_CLUSTER=1"
                             : "rc_cluster_node not found");
  }

  FILE* f = std::fopen("BENCH_tcp.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_tcp.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"echo\": {\"threads\": %d, \"window\": %d, "
               "\"payload_bytes\": %zu,\n"
               "    \"baseline_msgs_per_s\": %.0f, "
               "\"multireactor_msgs_per_s\": %.0f, \"speedup\": %.3f,\n"
               "    \"baseline_wakeups_per_msg\": %.4f, "
               "\"multireactor_wakeups_per_msg\": %.4f},\n",
               threads, window, kPayload, echo_base.msgs_per_s,
               echo_multi.msgs_per_s, echo_speedup,
               echo_base.wakeups_per_msg, echo_multi.wakeups_per_msg);
  std::fprintf(f,
               "  \"pipeline\": {\"baseline_msgs_per_s\": %.0f, "
               "\"multireactor_msgs_per_s\": %.0f, \"speedup\": %.3f},\n",
               pipe_base.msgs_per_s, pipe_multi.msgs_per_s, pipe_speedup);
  auto emit_rows = [&](const char* key, const std::vector<ClusterRow>& rows,
                       bool ordering_ok) {
    std::fprintf(f, "  \"%s\": [\n", key);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"flavor\": \"%s\", \"tcp_committed_per_s\": %.1f, "
                   "\"tcp_mean_ms\": %.3f, \"sim_committed_per_s\": %.1f, "
                   "\"sim_mean_ms\": %.3f}%s\n",
                   r.flavor, r.tcp_committed_per_s, r.tcp_mean_ms,
                   r.sim_committed_per_s, r.sim_mean_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"%s_ordering_ok\": %s,\n", key,
                 ordering_ok ? "true" : "false");
  };
  emit_rows("fig9", fig9, fig9_ok);
  emit_rows("fig13", fig13, fig13_ok);
  std::fprintf(f, "  \"echo_speedup_target_met\": %s\n}\n",
               echo_speedup >= 3.0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_tcp.json\n");
  return 0;
}

}  // namespace
}  // namespace srpc::bench

int main() { return srpc::bench::bench_main(); }
