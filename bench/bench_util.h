// Shared helpers for the figure/table reproduction benches.
//
// Every binary prints a self-describing table for one figure or table of
// the paper. Durations and the latency scale are environment-tunable:
//   SPECRPC_LAT_SCALE       multiply all emulated latencies (default 0.1)
//   SPECRPC_BENCH_WARMUP_S  per-run warmup seconds  (default 0.5)
//   SPECRPC_BENCH_MEASURE_S per-run measure seconds (default 2.0)
// Reported latencies are also shown de-scaled ("paper-scale") where that is
// meaningful, so shapes can be compared with the paper directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/types.h"

namespace srpc::bench {

inline double warmup_s() { return env_double("SPECRPC_BENCH_WARMUP_S", 0.5); }
inline double measure_s() {
  return env_double("SPECRPC_BENCH_MEASURE_S", 2.0);
}

inline Duration warmup() {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(warmup_s()));
}
inline Duration measure() {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(measure_s()));
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
      width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("| ");
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string();
        std::printf("%-*s | ", static_cast<int>(width[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::printf("%s|", std::string(width[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void banner(const char* exp_id, const char* description) {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 13);  // line-buffered when piped
  std::printf("==================================================\n");
  std::printf("%s — %s\n", exp_id, description);
  std::printf("lat scale %.3g, warmup %.2gs, measure %.2gs per point\n",
              latency_scale(), warmup_s(), measure_s());
  std::printf("==================================================\n");
}

}  // namespace srpc::bench
