// Hot-path scalability bench: executor task throughput, sim-network message
// rate, codec encode/decode bandwidth. Writes BENCH_hotpath.json (cwd) so
// later PRs can track the trajectory.
//
// The executor section measures srpc::Executor against an embedded copy of
// the original single-queue pool (one mutex, one deque, one condvar) so the
// work-stealing speedup stays measurable in-binary even after the swap.
//
// Env knobs:
//   SPECRPC_HOTPATH_SECS   seconds per measured point (default 0.6)
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/executor.h"
#include "common/types.h"
#include "serde/buffer_pool.h"
#include "serde/codec.h"
#include "serde/io.h"
#include "transport/sim_network.h"

namespace {

using srpc::Bytes;
using srpc::Value;
using srpc::ValueList;
using srpc::ValueMap;

double point_secs() { return srpc::env_double("SPECRPC_HOTPATH_SECS", 0.6); }

// Verbatim replica of the pre-overhaul Executor: one mutex, one deque, one
// condition variable shared by every worker. Kept as the bench baseline.
class SingleQueueExecutor {
 public:
  using Task = std::function<void()>;

  explicit SingleQueueExecutor(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~SingleQueueExecutor() { shutdown(); }

  bool post(Task task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return false;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Self-perpetuating chains: each task bumps a counter and reposts itself
// until the stop flag flips. Posting from inside a worker is the executor
// hot path this bench targets (strand pumps and RPC dispatch do exactly
// this), and it is where a single shared queue serializes everything.
// Each chain is sequential, so its counter needs no atomicity (the queue's
// release/acquire ordering carries it between workers); padding keeps the
// chains from false-sharing. The task captures one pointer so std::function
// copies stay in the small-object buffer: the bench then measures queue
// overhead, not allocator traffic from fat closures or a contended counter.
template <typename ExecutorT>
struct Chain {
  struct alignas(64) Slot {
    std::uint64_t count = 0;
  };
  ExecutorT* exec = nullptr;
  std::atomic<bool> done{false};
  std::atomic<int> live{0};  // chains still re-posting
  std::vector<Slot> slots;
};

template <typename ExecutorT>
void chain_task(Chain<ExecutorT>* ctx, int i) {
  ctx->slots[static_cast<std::size_t>(i)].count++;
  if (!ctx->done.load(std::memory_order_relaxed)) {
    ctx->exec->post([ctx, i] { chain_task(ctx, i); });
  } else {
    ctx->live.fetch_sub(1, std::memory_order_acq_rel);
  }
}

template <typename ExecutorT>
double executor_tasks_per_sec(ExecutorT& exec, int chains, double secs) {
  Chain<ExecutorT> ctx;
  ctx.exec = &exec;
  ctx.live.store(chains);
  ctx.slots.resize(static_cast<std::size_t>(chains));
  const auto t0 = srpc::Clock::now();
  Chain<ExecutorT>* p = &ctx;
  for (int i = 0; i < chains; ++i) exec.post([p, i] { chain_task(p, i); });
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  ctx.done.store(true);
  const double elapsed = std::chrono::duration<double>(
      srpc::Clock::now() - t0).count();
  // Wait for every chain to observe the stop flag before ctx goes away.
  while (ctx.live.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  std::uint64_t total = 0;
  for (const auto& s : ctx.slots) total += s.count;
  return static_cast<double>(total) / elapsed;
}

// External-submission shape: producer threads outside the pool post small
// tasks continuously, the way the timer wheel and application threads feed
// the executor. The queue hovers near empty, so a pool that parks eagerly
// pays a futex wake (condvar signal with a waiter) per task — that syscall
// dwarfs the task itself. Tasks bump per-producer relaxed atomic counters on
// their own cache lines; producers yield every 1024 posts so the queue stays
// bounded and the measured rate is sustained (executed) throughput.
template <typename ExecutorT>
double external_tasks_per_sec(ExecutorT& exec, int producers, double secs) {
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> count{0};
  };
  std::vector<Slot> slots(static_cast<std::size_t>(producers));
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Slot* s = &slots[static_cast<std::size_t>(p)];
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        exec.post([s] { s->count.fetch_add(1, std::memory_order_relaxed); });
        if ((++n & 1023) == 0) std::this_thread::yield();
      }
    });
  }
  auto sum = [&] {
    std::uint64_t t = 0;
    for (const auto& s : slots) t += s.count.load(std::memory_order_relaxed);
    return t;
  };
  // Warm up, then sample executed-task counts across a steady-state window.
  std::this_thread::sleep_for(std::chrono::duration<double>(secs * 0.25));
  const std::uint64_t c0 = sum();
  const auto t0 = srpc::Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  const std::uint64_t c1 = sum();
  const double elapsed =
      std::chrono::duration<double>(srpc::Clock::now() - t0).count();
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(c1 - c0) / elapsed;
}

double simnet_msgs_per_sec(double secs) {
  srpc::SimConfig cfg;
  cfg.executor_threads = 4;
  cfg.default_delay = srpc::Duration::zero();
  srpc::SimNetwork net(cfg);
  constexpr int kNodes = 4;
  std::vector<srpc::Transport*> nodes;
  std::atomic<std::uint64_t> received{0};
  for (int i = 0; i < kNodes; ++i) {
    auto& t = net.add_node("n" + std::to_string(i));
    t.set_receiver([&received](const srpc::Address&, Bytes) {
      received.fetch_add(1, std::memory_order_relaxed);
    });
    nodes.push_back(&t);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  const Bytes payload(64, 0xAB);
  for (int s = 0; s < 2; ++s) {
    senders.emplace_back([&, s] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int src = s * 2, dst = (src + 1 + i % (kNodes - 1)) % kNodes;
        nodes[static_cast<std::size_t>(src)]->send(
            "n" + std::to_string(dst), Bytes(payload));
        ++i;
      }
    });
  }
  const auto t0 = srpc::Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true);
  for (auto& t : senders) t.join();
  const double elapsed = std::chrono::duration<double>(
      srpc::Clock::now() - t0).count();
  return static_cast<double>(received.load()) / elapsed;
}

Value representative_value() {
  ValueList rows;
  for (int i = 0; i < 16; ++i) {
    ValueMap row;
    row.emplace("key", Value("user:" + std::to_string(1000 + i)));
    row.emplace("seq", Value(static_cast<std::int64_t>(i * 7919)));
    row.emplace("score", Value(0.25 * i));
    row.emplace("body", Value(std::string(48, static_cast<char>('a' + i))));
    rows.emplace_back(std::move(row));
  }
  return Value(std::move(rows));
}

struct CodecRates {
  double encode_mbps = 0;
  double decode_mbps = 0;
};

CodecRates codec_rates(const srpc::Codec& codec, double secs) {
  const Value v = representative_value();
  // encode_into with one reused buffer: the zero-alloc steady state.
  Bytes buf;
  codec.encode(v, buf);
  const double frame_bytes = static_cast<double>(buf.size());
  CodecRates rates;
  {
    std::uint64_t iters = 0;
    const auto t0 = srpc::Clock::now();
    double elapsed = 0;
    do {
      for (int i = 0; i < 64; ++i) {
        buf.clear();
        codec.encode(v, buf);
      }
      iters += 64;
      elapsed = std::chrono::duration<double>(srpc::Clock::now() - t0).count();
    } while (elapsed < secs);
    rates.encode_mbps = frame_bytes * static_cast<double>(iters) / elapsed /
                        (1024.0 * 1024.0);
  }
  {
    std::uint64_t iters = 0;
    const auto t0 = srpc::Clock::now();
    double elapsed = 0;
    do {
      for (int i = 0; i < 64; ++i) {
        Value out = codec.decode(buf);
        if (out.as_list().size() != v.as_list().size()) std::abort();
      }
      iters += 64;
      elapsed = std::chrono::duration<double>(srpc::Clock::now() - t0).count();
    } while (elapsed < secs);
    rates.decode_mbps = frame_bytes * static_cast<double>(iters) / elapsed /
                        (1024.0 * 1024.0);
  }
  return rates;
}

}  // namespace

int main() {
  srpc::bench::banner("perf_hotpath",
                      "executor / sim-network / codec hot-path throughput");
  const double secs = point_secs();
  const int kThreadCounts[] = {1, 4, 8};

  srpc::bench::Table exec_table({"threads", "shape", "single-queue tasks/s",
                                 "work-stealing tasks/s", "ratio"});
  double ws[3] = {0, 0, 0}, sq[3] = {0, 0, 0};
  double ws_ext[3] = {0, 0, 0}, sq_ext[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const int threads = kThreadCounts[i];
    const int chains = threads * 4;
    {
      SingleQueueExecutor exec(threads);
      sq[i] = executor_tasks_per_sec(exec, chains, secs);
      exec.shutdown();
    }
    {
      srpc::Executor exec(threads, "bench");
      ws[i] = executor_tasks_per_sec(exec, chains, secs);
      exec.shutdown();
    }
    {
      SingleQueueExecutor exec(threads);
      sq_ext[i] = external_tasks_per_sec(exec, /*producers=*/2, secs);
      exec.shutdown();
    }
    {
      srpc::Executor exec(threads, "bench");
      ws_ext[i] = external_tasks_per_sec(exec, /*producers=*/2, secs);
      exec.shutdown();
    }
    exec_table.row({std::to_string(threads), "worker-chain",
                    srpc::bench::fmt(sq[i], 0), srpc::bench::fmt(ws[i], 0),
                    srpc::bench::fmt(ws[i] / sq[i], 2)});
    exec_table.row({std::to_string(threads), "external",
                    srpc::bench::fmt(sq_ext[i], 0),
                    srpc::bench::fmt(ws_ext[i], 0),
                    srpc::bench::fmt(ws_ext[i] / sq_ext[i], 2)});
  }
  exec_table.print();

  const double net_rate = simnet_msgs_per_sec(secs);
  std::printf("\nsim-network: %.0f msgs/s (4 nodes, 2 senders, 64B)\n",
              net_rate);

  const CodecRates bin = codec_rates(srpc::binary_codec(), secs);
  const CodecRates tag = codec_rates(srpc::tagged_codec(), secs);
  std::printf("codec binary: encode %.1f MB/s, decode %.1f MB/s\n",
              bin.encode_mbps, bin.decode_mbps);
  std::printf("codec tagged: encode %.1f MB/s, decode %.1f MB/s\n",
              tag.encode_mbps, tag.decode_mbps);

  FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_hotpath.json");
    return 1;
  }
  std::fprintf(f, "{\n  \"executor\": {\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(
        f,
        "    \"threads_%d\": {\n"
        "      \"worker_chain\": {\"single_queue_tasks_per_sec\": %.0f, "
        "\"work_stealing_tasks_per_sec\": %.0f, \"ratio\": %.3f},\n"
        "      \"external_submit\": {\"single_queue_tasks_per_sec\": %.0f, "
        "\"work_stealing_tasks_per_sec\": %.0f, \"ratio\": %.3f}\n"
        "    }%s\n",
        kThreadCounts[i], sq[i], ws[i], ws[i] / sq[i], sq_ext[i], ws_ext[i],
        ws_ext[i] / sq_ext[i], i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"simnet_msgs_per_sec\": %.0f,\n", net_rate);
  std::fprintf(f,
               "  \"codec\": {\n"
               "    \"binary\": {\"encode_MBps\": %.2f, \"decode_MBps\": "
               "%.2f},\n"
               "    \"tagged\": {\"encode_MBps\": %.2f, \"decode_MBps\": "
               "%.2f}\n  }\n}\n",
               bin.encode_mbps, bin.decode_mbps, tag.encode_mbps,
               tag.decode_mbps);
  std::fclose(f);
  std::printf("\nwrote BENCH_hotpath.json\n");
  return 0;
}
