// Figure 8c: network bandwidth usage of the three frameworks under the §5.1
// microbenchmark (client/server x send/receive).
//
// Paper shape: gRPC uses the least bandwidth (optimized serialization);
// TradRPC more (verbose fixed-width encoding); SpecRPC the most (TradRPC's
// encoding + re-executed RPCs and state-change messages).
#include <cstdio>

#include "bench_util.h"
#include "workload/microbench.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 8c", "network bandwidth usage (microbench, 90% rate)");

  bench::Table table({"framework", "client send (kbps)", "client recv (kbps)",
                      "server send (kbps)", "server recv (kbps)"});
  for (Flavor flavor : kAllFlavors) {
    wl::MicroConfig config;
    config.flavor = flavor;
    config.correct_rate = 0.9;
    config.seed = 77;
    const auto result =
        wl::run_microbench(config, bench::warmup(), bench::measure());
    table.row({to_string(flavor), bench::fmt(result.client_send_kbps(), 1),
               bench::fmt(result.client_recv_kbps(), 1),
               bench::fmt(result.server_send_kbps(), 1),
               bench::fmt(result.server_recv_kbps(), 1)});
  }
  table.print();
  std::printf("\nPaper shape: gRPC < TradRPC < SpecRPC on every series.\n");
  return 0;
}
