// Figure 9: mean transaction completion time and commit latency versus the
// number of operations per transaction (YCSB+T, 1:1 reads/writes, Zipf
// alpha 0.75, Table 1 RTTs).
//
// Paper shape: gRPC/TradRPC completion time grows linearly with the number
// of reads (each dependent quorum read costs a WAN round trip) — >600% from
// 5 to 50 ops; SpecRPC stays nearly flat (+23%), and the commit latency is
// roughly constant for all three (one WAN round trip). First-responder
// prediction accuracy should exceed 95%.
#include <cstdio>

#include "rc_bench_util.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 9", "RC txn completion & commit latency vs ops/txn");

  bench::Table table({"ops/txn", "framework", "completion (ms, paper-scale)",
                      "commit latency (ms, paper-scale)", "txns"});
  double first_spec = 0;
  double last_spec = 0;
  double first_trad = 0;
  double last_trad = 0;
  for (int ops : {5, 10, 20, 30, 40, 50}) {
    for (Flavor flavor : kAllFlavors) {
      auto config = bench::rc_config(flavor);
      rc::RcCluster cluster(config);
      wl::YcsbtConfig workload;
      workload.ops_per_txn = ops;
      workload.read_fraction = 0.5;
      workload.zipf_alpha = 0.75;
      workload.num_keys = config.num_keys;
      auto result = wl::run_rc_closed_loop(
          cluster, bench::ycsbt_factory(workload, 10'000 + ops),
          bench::warmup(), bench::measure());
      const double mean = bench::descale_ms(result.txn_latency.mean_ms());
      const double commit =
          bench::descale_ms(result.commit_latency.mean_ms());
      table.row({std::to_string(ops), to_string(flavor), bench::fmt(mean, 1),
                 bench::fmt(commit, 1), std::to_string(result.committed)});
      if (flavor == Flavor::kSpec) {
        if (ops == 5) first_spec = mean;
        if (ops == 50) last_spec = mean;
      }
      if (flavor == Flavor::kTrad) {
        if (ops == 5) first_trad = mean;
        if (ops == 50) last_trad = mean;
      }
      if (flavor == Flavor::kSpec && ops == 50) {
        const auto stats = cluster.spec_stats();
        std::printf("  [SpecRPC @50 ops] first-response prediction accuracy:"
                    " %.1f%% (%llu/%llu)\n",
                    100.0 * stats.predictions_correct /
                        std::max<std::uint64_t>(1, stats.predictions_made),
                    static_cast<unsigned long long>(stats.predictions_correct),
                    static_cast<unsigned long long>(stats.predictions_made));
      }
    }
  }
  table.print();
  std::printf("\nGrowth 5 -> 50 ops: SpecRPC %+.0f%%, TradRPC %+.0f%% "
              "(paper: +23%% vs >+600%%)\n",
              100.0 * (last_spec / first_spec - 1.0),
              100.0 * (last_trad / first_trad - 1.0));
  return 0;
}
