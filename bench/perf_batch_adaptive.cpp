// perf_batch_adaptive — adaptive batching (DESIGN.md §14): online epoch
// sizing + commit-mode selection vs the three static batch configs over a
// phase-shifting qstream conflict schedule. Writes BENCH_batch_adaptive.json
// (cwd).
//
// The schedule runs three phases on ONE live cluster per config (clients,
// seeds and controllers persist across phase boundaries, so adaptation cost
// is measured, not hidden):
//
//   low    wide warm hot set, low contention  -> deep speculative epochs win
//   high   tiny hot set at a NEW identity, high contention + straddles
//          -> conflict amplification; small epochs / conservative commit
//   low2   calm again, hot set moves once more -> the controller must find
//          its way back (probing reopens the speculative gate; epoch size
//          regrows)
//
// Static configs keep (mode, epoch=32) pinned; adaptive starts from the
// same point and moves both dials per client. Acceptance (ISSUE 10):
// adaptive committed-txn/s within 10% of the per-phase best static in every
// phase AND >= 1.3x the worst static config overall. A single-client
// correctness pass per config checks replicated state against a serial
// replay of the committed transactions — across mode switches for the
// adaptive config.
//
// Env knobs (on top of bench_util's SPECRPC_BENCH_{WARMUP,MEASURE}_S):
//   SPECRPC_BADAPT_CLIENTS_PER_DC  closed-loop clients per DC  (default 2)
//   SPECRPC_BADAPT_RTT_MS          uniform inter-DC RTT        (default 4)
//   SPECRPC_BADAPT_NUM_KEYS        dataset size                (default 20000)
//   SPECRPC_BADAPT_EPOCH           static configs' epoch size  (default 32)
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/adaptive.h"
#include "batch/client.h"
#include "batch/types.h"
#include "bench_util.h"
#include "common/env.h"
#include "rc/cluster.h"
#include "workload/qstream.h"
#include "workload/runner.h"

namespace {

using namespace srpc;
using namespace srpc::bench;
using batch::BatchMode;

/// Pinned epoch size of the static configs (and the adaptive controller's
/// starting point). Env-overridable for manual size scans.
const std::size_t kStaticEpoch =
    static_cast<std::size_t>(srpc::env_long("SPECRPC_BADAPT_EPOCH", 32));

struct BenchConfig {
  const char* name;
  bool adaptive;
  BatchMode mode;  // static mode, or the adaptive controller's initial mode
};

constexpr BenchConfig kConfigs[] = {
    {"per-txn-2pc", false, BatchMode::kPerTxn2pc},
    {"group-commit", false, BatchMode::kGroupCommit},
    {"speculative", false, BatchMode::kSpeculative},
    {"adaptive", true, BatchMode::kSpeculative},
};
constexpr int kNumConfigs = 4;

/// The conflict schedule. hot_offset moves the hot set's identity at each
/// shift, so phase boundaries also kill the old seeds' usefulness.
constexpr wl::QStreamPhase kPhases[] = {
    /*low*/ {/*hot_keys=*/32, /*hot_offset=*/0, /*hot_fraction=*/0.2,
             /*cross=*/0.2},
    /*high*/ {/*hot_keys=*/2, /*hot_offset=*/5000, /*hot_fraction=*/0.9,
              /*cross=*/0.5},
    /*low2*/ {/*hot_keys=*/32, /*hot_offset=*/10000, /*hot_fraction=*/0.2,
              /*cross=*/0.2},
};
constexpr const char* kPhaseNames[] = {"low", "high", "low2"};
constexpr int kNumPhases = 3;

rc::ClusterConfig cluster_config(const BenchConfig& bc, int clients_per_dc,
                                 std::size_t num_keys, double rtt_ms) {
  rc::ClusterConfig config;
  // As in perf_batch: only speculation needs engines; 2PC/group baselines
  // run on the TradRPC kit. The adaptive config runs kSpec so the
  // controller has all three modes to choose from.
  config.flavor = bc.adaptive || bc.mode == BatchMode::kSpeculative
                      ? Flavor::kSpec
                      : Flavor::kTrad;
  config.geo = uniform_geo(rtt_ms);
  config.geo.lan_rtt_ms = 0.2;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = num_keys;
  config.batch_clients = true;
  config.batch_mode = bc.mode;
  config.batch_txns_per_epoch = kStaticEpoch;
  if (bc.adaptive) {
    config.adaptive_batch = true;
    config.adaptive_batch_config.min_epoch = 4;
    config.adaptive_batch_config.max_epoch = 64;
    config.adaptive_batch_config.initial_epoch = kStaticEpoch;
    // Probe often enough to re-find speculation within a phase (phases are
    // a couple hundred epochs at bench scale).
    config.adaptive_batch_config.probe_every = 6;
  }
  return config;
}

wl::QStreamConfig qstream_config(std::size_t num_keys) {
  wl::QStreamConfig wc;
  wc.txns_per_epoch = kStaticEpoch;
  wc.ops_per_txn = 4;
  wc.num_keys = num_keys;
  wc.hot_keys = kPhases[0].hot_keys;
  wc.hot_offset = kPhases[0].hot_offset;
  wc.hot_fraction = kPhases[0].hot_fraction;
  wc.cross_partition_fraction = kPhases[0].cross_partition_fraction;
  return wc;
}

// ---------------------------------------------------------- correctness

/// Serial-execution reference (same as perf_batch / tests/test_batch.cc).
class SerialReplay {
 public:
  explicit SerialReplay(std::string initial) : initial_(std::move(initial)) {}

  void apply(const batch::BatchTxn& txn) {
    std::map<std::string, std::string> buffer;
    for (const auto& op : txn.ops) {
      if (op.kind == batch::OpKind::kWrite) {
        buffer[op.key] = op.value;
        continue;
      }
      const std::string current = [&] {
        auto bit = buffer.find(op.key);
        if (bit != buffer.end()) return bit->second;
        auto it = state_.find(op.key);
        return it != state_.end() ? it->second : initial_;
      }();
      if (op.kind == batch::OpKind::kRmw) {
        buffer[op.key] =
            batch::apply_transform(op.transform, current, op.value);
      }
    }
    for (auto& [key, value] : buffer) state_[key] = value;
  }

  const std::map<std::string, std::string>& state() const { return state_; }

 private:
  std::string initial_;
  std::map<std::string, std::string> state_;
};

bool converged(rc::RcCluster& cluster,
               const std::map<std::string, std::string>& expected) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  const auto view = cluster.view();
  for (const auto& [key, value] : expected) {
    const int shard = view->shard_of(key);
    for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
      for (;;) {
        auto got = cluster.store(dc, shard).get(key);
        if (got.has_value() && got->value == value) break;
        if (Clock::now() > deadline) {
          std::fprintf(stderr,
                       "  divergence: dc%d shard%d %s = '%s', expected '%s'\n",
                       dc, shard, key.c_str(),
                       got ? got->value.c_str() : "<missing>", value.c_str());
          return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
  return true;
}

/// One fixed single-client stream through the full phase schedule; true iff
/// every txn committed and replicated state equals the serial replay. For
/// the adaptive config the epochs run at controller-chosen sizes and modes
/// (the schedule's conflict swings force real mode switches), so this is
/// the serial-equality-across-mode-switches check.
bool run_correctness(const BenchConfig& bc, std::size_t num_keys,
                     double rtt_ms) {
  rc::RcCluster cluster(
      cluster_config(bc, /*clients_per_dc=*/1, num_keys, rtt_ms));
  auto& client = cluster.batch_client(0, 0);

  wl::QStreamConfig wc = qstream_config(num_keys);
  wl::QStreamWorkload workload(wc, /*seed=*/7);
  SerialReplay replay(std::string(16, 'v'));

  bool all_committed = true;
  for (int phase = 0; phase < kNumPhases; ++phase) {
    workload.set_phase(kPhases[static_cast<std::size_t>(phase)]);
    for (int epoch = 0; epoch < 6; ++epoch) {
      auto txns = workload.next_txns(client.next_epoch_size());
      const auto reference = txns;  // run_epoch consumes the batch
      batch::EpochResult result = client.run_epoch(std::move(txns));
      for (std::size_t i = 0; i < reference.size(); ++i) {
        if (i < result.decisions.size() && result.decisions[i]) {
          replay.apply(reference[i]);
        } else {
          all_committed = false;  // single client: nothing should abort
        }
      }
    }
  }
  return all_committed && converged(cluster, replay.state());
}

// ----------------------------------------------------------- throughput

struct PhaseResult {
  double committed_per_s = 0;
  double abort_rate = 0;
  std::uint64_t epochs = 0;
  double mean_epoch_ms = 0;
  /// Adaptive config only: controller snapshot at the end of the phase
  /// (cumulative counters; gauges are phase-end values).
  batch::AdaptiveBatchStats ctl_after;
};

struct ConfigResult {
  PhaseResult phases[kNumPhases];
  double overall_per_s = 0;
  batch::AdaptiveBatchStats controller;  // zeroes for static configs
};

ConfigResult run_schedule(const BenchConfig& bc, int clients_per_dc,
                          std::size_t num_keys, double rtt_ms) {
  rc::RcCluster cluster(
      cluster_config(bc, clients_per_dc, num_keys, rtt_ms));
  const int total_clients = cluster.num_dcs() * clients_per_dc;

  // Persistent per-client streams: the SAME workload objects shift phase
  // mid-run, so the stream (and the client's seeds/controller state) is
  // continuous across phase boundaries — that is the whole experiment.
  const wl::QStreamConfig wc = qstream_config(num_keys);
  std::vector<std::shared_ptr<wl::QStreamWorkload>> streams;
  streams.reserve(static_cast<std::size_t>(total_clients));
  for (int i = 0; i < total_clients; ++i) {
    streams.push_back(std::make_shared<wl::QStreamWorkload>(
        wc, 1000 + static_cast<std::uint64_t>(i)));
  }
  wl::SizedBatchWorkloadFactory factory = [&streams](int client_index) {
    auto w = streams[static_cast<std::size_t>(client_index)];
    return [w](std::size_t n) { return w->next_txns(n); };
  };

  ConfigResult out;
  double total_committed = 0;
  double total_s = 0;
  for (int phase = 0; phase < kNumPhases; ++phase) {
    for (auto& s : streams) s->set_phase(kPhases[static_cast<std::size_t>(phase)]);
    const wl::BatchRunResult r =
        wl::run_batch_closed_loop(cluster, factory, warmup(), measure());
    PhaseResult& pr = out.phases[phase];
    pr.committed_per_s = r.committed_per_s();
    pr.abort_rate = r.abort_rate();
    pr.epochs = r.epochs;
    pr.mean_epoch_ms = r.epoch_latency.mean_ms();
    if (bc.adaptive) pr.ctl_after = cluster.adaptive_batch_stats();
    total_committed += static_cast<double>(r.committed);
    total_s += r.elapsed_s;
  }
  out.overall_per_s = total_s > 0 ? total_committed / total_s : 0;
  if (bc.adaptive) out.controller = cluster.adaptive_batch_stats();
  return out;
}

}  // namespace

int main() {
  banner("perf_batch_adaptive",
         "adaptive batching: online epoch sizing + commit-mode selection vs "
         "static configs over a shifting conflict schedule");

  const int clients_per_dc =
      static_cast<int>(env_long("SPECRPC_BADAPT_CLIENTS_PER_DC", 2));
  const double rtt_ms = env_double("SPECRPC_BADAPT_RTT_MS", 4.0);
  const std::size_t num_keys =
      static_cast<std::size_t>(env_long("SPECRPC_BADAPT_NUM_KEYS", 20'000));

  // Phase 1: serial-equivalence per config (adaptive = across mode flips).
  std::printf("correctness (phase schedule vs serial replay):\n");
  bool state_match[kNumConfigs];
  for (int c = 0; c < kNumConfigs; ++c) {
    state_match[c] = run_correctness(kConfigs[c], num_keys, rtt_ms);
    std::printf("  %-12s %s\n", kConfigs[c].name,
                state_match[c] ? "state == serial replay" : "DIVERGED");
  }
  bool all_match = true;
  for (const bool m : state_match) all_match = all_match && m;

  // Phase 2: the conflict schedule, one live cluster per config.
  std::printf("\nschedule: %d clients/DC, rtt %.1fms, phases", clients_per_dc,
              rtt_ms);
  for (int p = 0; p < kNumPhases; ++p) {
    std::printf(" %s(hot=%zu@%llu f=%.1f)", kPhaseNames[p],
                kPhases[p].hot_keys,
                static_cast<unsigned long long>(kPhases[p].hot_offset),
                kPhases[p].hot_fraction);
  }
  std::printf("\n\n");

  ConfigResult results[kNumConfigs];
  std::printf("%14s %10s %10s %10s %10s\n", "config", "low/s", "high/s",
              "low2/s", "overall/s");
  for (int c = 0; c < kNumConfigs; ++c) {
    results[c] = run_schedule(kConfigs[c], clients_per_dc, num_keys, rtt_ms);
    std::printf("%14s %10.0f %10.0f %10.0f %10.0f\n", kConfigs[c].name,
                results[c].phases[0].committed_per_s,
                results[c].phases[1].committed_per_s,
                results[c].phases[2].committed_per_s,
                results[c].overall_per_s);
  }

  const ConfigResult& adaptive = results[3];
  const auto& ctl = adaptive.controller;
  std::printf(
      "\nadaptive controller: epochs=%llu (2pc=%llu group=%llu spec=%llu) "
      "flips=%llu probes=%llu grows=%llu shrinks=%llu final_size=%zu\n",
      static_cast<unsigned long long>(ctl.epochs),
      static_cast<unsigned long long>(ctl.mode_epochs[0]),
      static_cast<unsigned long long>(ctl.mode_epochs[1]),
      static_cast<unsigned long long>(ctl.mode_epochs[2]),
      static_cast<unsigned long long>(ctl.mode_flips),
      static_cast<unsigned long long>(ctl.probes),
      static_cast<unsigned long long>(ctl.grows),
      static_cast<unsigned long long>(ctl.shrinks), ctl.epoch_size);
  {
    batch::AdaptiveBatchStats prev;
    for (int p = 0; p < kNumPhases; ++p) {
      const auto& a = adaptive.phases[p].ctl_after;
      std::printf(
          "  after %-4s: +epochs=%llu (2pc=%llu group=%llu spec=%llu) "
          "+acc_obs=%llu size=%zu conflict=%.2f/%.2f acc=%.2f/%.2f\n",
          kPhaseNames[p],
          static_cast<unsigned long long>(a.epochs - prev.epochs),
          static_cast<unsigned long long>(a.mode_epochs[0] -
                                          prev.mode_epochs[0]),
          static_cast<unsigned long long>(a.mode_epochs[1] -
                                          prev.mode_epochs[1]),
          static_cast<unsigned long long>(a.mode_epochs[2] -
                                          prev.mode_epochs[2]),
          static_cast<unsigned long long>(a.accuracy_epochs -
                                          prev.accuracy_epochs),
          a.epoch_size, a.conflict_ewma, a.conflict_windowed, a.accuracy_ewma,
          a.accuracy_windowed);
      prev = a;
    }
  }

  // Acceptance: within 10% of the per-phase best static, >=1.3x the worst
  // static overall.
  bool within10 = true;
  double best_static[kNumPhases];
  for (int p = 0; p < kNumPhases; ++p) {
    best_static[p] = 0;
    for (int c = 0; c < 3; ++c) {
      best_static[p] = std::max(best_static[p],
                                results[c].phases[p].committed_per_s);
    }
    within10 = within10 &&
               adaptive.phases[p].committed_per_s >= 0.9 * best_static[p];
  }
  double worst_overall = results[0].overall_per_s;
  for (int c = 1; c < 3; ++c) {
    worst_overall = std::min(worst_overall, results[c].overall_per_s);
  }
  const double vs_worst =
      worst_overall > 0 ? adaptive.overall_per_s / worst_overall : 0;
  const bool beats_worst = vs_worst >= 1.3;
  std::printf(
      "\nadaptive vs best static per phase: %.2f/%.2f/%.2f of best "
      "(accept>=0.9: %s); %.2fx worst static overall (accept>=1.3x: %s); "
      "states match serial: %s\n",
      best_static[0] > 0 ? adaptive.phases[0].committed_per_s / best_static[0]
                         : 0,
      best_static[1] > 0 ? adaptive.phases[1].committed_per_s / best_static[1]
                         : 0,
      best_static[2] > 0 ? adaptive.phases[2].committed_per_s / best_static[2]
                         : 0,
      within10 ? "yes" : "NO", vs_worst, beats_worst ? "yes" : "NO",
      all_match ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_batch_adaptive.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_batch_adaptive.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"clients_per_dc\": %d,\n  \"rtt_ms\": %.1f,\n"
               "  \"num_keys\": %zu,\n  \"static_epoch\": %zu,\n"
               "  \"phases\": [\n",
               clients_per_dc, rtt_ms, num_keys, kStaticEpoch);
  for (int p = 0; p < kNumPhases; ++p) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"hot_keys\": %zu, "
                 "\"hot_offset\": %llu, \"hot_fraction\": %.2f, "
                 "\"cross_fraction\": %.2f}%s\n",
                 kPhaseNames[p], kPhases[p].hot_keys,
                 static_cast<unsigned long long>(kPhases[p].hot_offset),
                 kPhases[p].hot_fraction, kPhases[p].cross_partition_fraction,
                 p + 1 < kNumPhases ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"configs\": {\n");
  for (int c = 0; c < kNumConfigs; ++c) {
    const ConfigResult& r = results[c];
    std::fprintf(f, "    \"%s\": {\"correctness\": %s, \"overall_per_s\": "
                    "%.0f,\n      \"phases\": [",
                 kConfigs[c].name, state_match[c] ? "true" : "false",
                 r.overall_per_s);
    for (int p = 0; p < kNumPhases; ++p) {
      std::fprintf(f,
                   "{\"committed_per_s\": %.0f, \"abort_rate\": %.4f, "
                   "\"epochs\": %llu, \"mean_epoch_ms\": %.3f}%s",
                   r.phases[p].committed_per_s, r.phases[p].abort_rate,
                   static_cast<unsigned long long>(r.phases[p].epochs),
                   r.phases[p].mean_epoch_ms, p + 1 < kNumPhases ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", c + 1 < kNumConfigs ? "," : "");
  }
  std::fprintf(
      f,
      "  },\n  \"controller\": {\"epochs\": %llu, \"mode_epochs\": "
      "[%llu, %llu, %llu], \"mode_flips\": %llu, \"probes\": %llu,\n"
      "    \"grows\": %llu, \"shrinks\": %llu, \"final_epoch_size\": %zu,\n"
      "    \"conflict_ewma\": %.4f, \"accuracy_ewma\": %.4f},\n",
      static_cast<unsigned long long>(ctl.epochs),
      static_cast<unsigned long long>(ctl.mode_epochs[0]),
      static_cast<unsigned long long>(ctl.mode_epochs[1]),
      static_cast<unsigned long long>(ctl.mode_epochs[2]),
      static_cast<unsigned long long>(ctl.mode_flips),
      static_cast<unsigned long long>(ctl.probes),
      static_cast<unsigned long long>(ctl.grows),
      static_cast<unsigned long long>(ctl.shrinks), ctl.epoch_size,
      ctl.conflict_ewma, ctl.accuracy_ewma);
  std::fprintf(
      f,
      "  \"adaptive_vs_best_static\": [%.3f, %.3f, %.3f],\n"
      "  \"adaptive_vs_worst_overall\": %.3f,\n"
      "  \"accept_within_10pct_of_best\": %s,\n"
      "  \"accept_1p3x_worst_overall\": %s,\n"
      "  \"accept_states_match_serial\": %s\n}\n",
      best_static[0] > 0 ? adaptive.phases[0].committed_per_s / best_static[0]
                         : 0,
      best_static[1] > 0 ? adaptive.phases[1].committed_per_s / best_static[1]
                         : 0,
      best_static[2] > 0 ? adaptive.phases[2].committed_per_s / best_static[2]
                         : 0,
      vs_worst, within10 ? "true" : "false", beats_worst ? "true" : "false",
      all_match ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_batch_adaptive.json\n");
  // Exit 0 regardless: sanitizer smokes run this binary with tiny windows
  // where the ratios are noise; the JSON records the acceptance verdicts.
  return 0;
}
