// Figure 8a: mean request completion time versus correct-prediction rate.
//
// §5.1 microbenchmark: 16 clients, 4 dependent 10 ms RPCs per request, 64 B
// payloads, 10 requests/s per client. gRPC and TradRPC execute the chain
// sequentially (flat lines around 4 RPC times); SpecRPC's completion falls
// as the per-RPC prediction rate rises — up to a 75% reduction at 100%,
// and ~0.1 ms overhead over TradRPC at 0%.
#include <cstdio>

#include "bench_util.h"
#include "workload/microbench.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 8a",
                "request completion vs correct prediction rate (microbench)");

  wl::MicroConfig base;
  base.rpcs_per_request = 4;
  base.service_time = from_ms(10.0);

  // Baselines do not use predictions: one run each.
  double grpc_ms = 0;
  double trad_ms = 0;
  {
    auto config = base;
    config.flavor = Flavor::kGrpc;
    grpc_ms = wl::run_microbench(config, bench::warmup(), bench::measure())
                  .mean_ms();
    config.flavor = Flavor::kTrad;
    trad_ms = wl::run_microbench(config, bench::warmup(), bench::measure())
                  .mean_ms();
  }

  bench::Table table({"correct prediction rate (%)", "gRPC (ms)",
                      "TradRPC (ms)", "SpecRPC (ms)",
                      "SpecRPC adaptive (ms)", "SpecRPC vs gRPC (%)"});
  for (int rate = 0; rate <= 100; rate += 10) {
    auto config = base;
    config.flavor = Flavor::kSpec;
    config.correct_rate = rate / 100.0;
    config.seed = 7 + static_cast<std::uint64_t>(rate);
    const auto result =
        wl::run_microbench(config, bench::warmup(), bench::measure());
    const double spec_ms = result.mean_ms();
    // Adaptive series: the same oracle accuracy, but predictions flow
    // through the supplier hook behind the AdaptiveSpeculationController —
    // below break-even accuracy the gate closes and the curve flattens at
    // the no-speculation level instead of paying for wrong guesses.
    auto adaptive_config = config;
    adaptive_config.predict.oracle = true;
    adaptive_config.predict.adaptive = true;
    const double adaptive_ms =
        wl::run_microbench(adaptive_config, bench::warmup(), bench::measure())
            .mean_ms();
    table.row({std::to_string(rate), bench::fmt(grpc_ms),
               bench::fmt(trad_ms), bench::fmt(spec_ms),
               bench::fmt(adaptive_ms),
               bench::fmt(100.0 * (1.0 - spec_ms / grpc_ms), 1)});
  }
  table.print();
  std::printf("\nPaper shape: baselines flat (~41 / ~40.5 ms); SpecRPC "
              "falls to ~1 RPC time at 100%% (-75%%), ~40%% reduction at "
              "50%%, and ~TradRPC+0.1ms at 0%%. The adaptive series tracks "
              "SpecRPC above break-even accuracy and the TradRPC level "
              "below it (gate closed).\n");
  return 0;
}
