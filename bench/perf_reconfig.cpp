// perf_reconfig — goodput through a live shard migration (DESIGN.md §13).
// Writes BENCH_reconfig.json (cwd).
//
// Closed-loop clients increment a spread of counter keys while the view
// coordinator migrates half of shard 0's slots to the next shard over.
// Committed transactions are bucketed into 100 ms windows, giving a goodput
// timeline across three phases:
//
//   steady      pre-migration closed-loop throughput (the baseline)
//   migration   epoch N+1 installs, stale clients are NACKed and refresh,
//               the gaining shard warms the moved slots (state transfer)
//   recovered   post-migration throughput under the new view
//
// Acceptance (ISSUE 9): the migration completes while traffic flows, no
// committed increment is lost across the epoch boundary (final counter
// values equal the per-key committed counts), and recovered throughput is
// >= 90% of steady state. The dip is reported as the worst 100 ms window
// inside the migration phase.
//
// Env knobs (on top of bench_util's SPECRPC_BENCH_{WARMUP,MEASURE}_S):
//   SPECRPC_RECONFIG_CLIENTS_PER_DC  closed-loop clients per DC (default 2)
//   SPECRPC_RECONFIG_RTT_MS          uniform inter-DC RTT       (default 4)
//   SPECRPC_RECONFIG_STEADY_S        steady phase seconds       (default 1.5)
//   SPECRPC_RECONFIG_POST_S          post-migration seconds     (default 1.5)
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/rng.h"
#include "rc/cluster.h"

namespace {

using namespace srpc;
using namespace srpc::bench;

constexpr int kCounters = 48;        // counter keys, spread over the slots
constexpr auto kWindow = std::chrono::milliseconds(100);

std::vector<std::string> counter_keys() {
  std::vector<std::string> keys;
  keys.reserve(kCounters);
  for (int i = 0; i < kCounters; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08d", i);
    keys.emplace_back(key);
  }
  return keys;
}

struct FlavorResult {
  bool migrate_ok = false;
  double migration_ms = 0;
  std::int64_t final_epoch = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t view_refreshes = 0;
  std::uint64_t lost_writes = 0;  // |store counter - committed increments|
  double steady_per_s = 0;
  double dip_min_window_per_s = 0;  // worst 100 ms window while migrating
  double recovered_per_s = 0;
  double recovered_ratio = 0;       // recovered / steady
};

FlavorResult run_flavor(Flavor flavor, int clients_per_dc, double rtt_ms,
                        Duration steady, Duration post) {
  rc::ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(rtt_ms);
  config.geo.lan_rtt_ms = 0.2;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = 1000;
  rc::RcCluster cluster(config);

  const auto keys = counter_keys();
  const std::string initial(16, 'v');
  auto increment = [initial](const std::string& current) {
    const int n = current == initial ? 0 : std::stoi(current);
    return std::to_string(n + 1);
  };

  // 100 ms goodput buckets over the whole run (generously oversized).
  const std::size_t max_buckets =
      static_cast<std::size_t>(to_ms(warmup() + steady + post) / 100) + 600;
  std::vector<std::atomic<std::uint64_t>> buckets(max_buckets);
  std::vector<std::atomic<std::uint64_t>> per_key(keys.size());
  std::atomic<std::uint64_t> committed{0}, aborted{0}, refreshes{0};
  std::atomic<bool> stop{false};
  const TimePoint start = Clock::now();

  std::vector<std::thread> workers;
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) {
      workers.emplace_back([&, dc, i] {
        auto& client = cluster.client(dc, i);
        Rng rng(static_cast<std::uint64_t>(dc * 64 + i + 1));
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t k = rng.uniform(keys.size());
          rc::TxnResult r = client.run_transform(keys[k], increment);
          refreshes.fetch_add(static_cast<std::uint64_t>(r.view_refreshes));
          if (!r.committed) {
            aborted.fetch_add(1);
            continue;
          }
          committed.fetch_add(1);
          per_key[k].fetch_add(1);
          const auto since = Clock::now() - start;
          const std::size_t bucket = static_cast<std::size_t>(since / kWindow);
          if (bucket < buckets.size()) buckets[bucket].fetch_add(1);
        }
      });
    }
  }

  std::this_thread::sleep_for(warmup());
  const TimePoint steady_start = Clock::now();
  std::this_thread::sleep_for(steady);

  // The migration: half of shard 0's slots move to the next shard while the
  // closed loop keeps running. migrate_slots returns only after every
  // replica adopted the epoch and finished warming (state transfer landed).
  const TimePoint mig_start = Clock::now();
  const auto slots = cluster.view()->slots_of(0);
  const std::vector<int> moved(slots.begin(),
                               slots.begin() + static_cast<long>(slots.size()) / 2);
  FlavorResult out;
  out.migrate_ok = cluster.view_coordinator().migrate_slots(
      moved, 1 % cluster.num_shards(), std::chrono::seconds(30));
  const TimePoint mig_end = Clock::now();

  std::this_thread::sleep_for(post);
  const TimePoint end = Clock::now();
  stop.store(true);
  for (auto& t : workers) t.join();

  // Counter audit: every committed increment must be visible exactly once,
  // across the epoch boundary. (Quiesce first: decides are asynchronous.)
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (std::size_t k = 0; k < keys.size(); ++k) {
    std::vector<rc::Op> read;
    read.push_back(rc::Op{true, keys[k], {}});
    rc::TxnResult r = cluster.client(0, 0).run(read);
    const std::string& value = r.reads.empty() ? initial : r.reads[0].value;
    const std::uint64_t stored =
        r.committed && value != initial
            ? static_cast<std::uint64_t>(std::stoll(value))
            : 0;
    const std::uint64_t expected = per_key[k].load();
    out.lost_writes += stored > expected ? stored - expected : expected - stored;
  }

  auto window_rate = [&](TimePoint from, TimePoint to) {
    const auto b0 = static_cast<std::size_t>((from - start) / kWindow);
    const auto b1 = static_cast<std::size_t>((to - start) / kWindow);
    std::uint64_t n = 0;
    for (std::size_t b = b0; b < b1 && b < buckets.size(); ++b)
      n += buckets[b].load();
    const double seconds = to_ms(to - from) / 1000.0;
    return seconds > 0 ? static_cast<double>(n) / seconds : 0.0;
  };

  out.migration_ms = to_ms(mig_end - mig_start);
  out.final_epoch = cluster.view()->epoch;
  out.committed = committed.load();
  out.aborted = aborted.load();
  out.view_refreshes = refreshes.load();
  out.steady_per_s = window_rate(steady_start, mig_start);
  out.recovered_per_s = window_rate(mig_end, end);
  out.recovered_ratio =
      out.steady_per_s > 0 ? out.recovered_per_s / out.steady_per_s : 0;

  // Worst 100 ms window from migration start until 1 s after it finished
  // (whole windows only — a window the migration ended inside is partial).
  const auto d0 = static_cast<std::size_t>((mig_start - start) / kWindow) + 1;
  const auto d1 = static_cast<std::size_t>(
      (mig_end + std::chrono::seconds(1) - start) / kWindow);
  std::uint64_t dip_min = UINT64_MAX;
  for (std::size_t b = d0; b < d1 && b < buckets.size(); ++b) {
    dip_min = std::min(dip_min, buckets[b].load());
  }
  out.dip_min_window_per_s =
      dip_min == UINT64_MAX ? 0 : static_cast<double>(dip_min) * 10.0;
  return out;
}

}  // namespace

int main() {
  banner("perf_reconfig",
         "goodput through a live shard migration (view-change protocol)");

  const int clients_per_dc =
      static_cast<int>(env_long("SPECRPC_RECONFIG_CLIENTS_PER_DC", 2));
  const double rtt_ms = env_double("SPECRPC_RECONFIG_RTT_MS", 4.0);
  const auto seconds = [](double s) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(s));
  };
  const Duration steady =
      seconds(env_double("SPECRPC_RECONFIG_STEADY_S", 1.5));
  const Duration post = seconds(env_double("SPECRPC_RECONFIG_POST_S", 1.5));

  const Flavor flavors[] = {Flavor::kTrad, Flavor::kSpec};
  FlavorResult results[2];
  std::printf("%8s %10s %9s %11s %11s %11s %9s %6s %5s\n", "flavor",
              "steady/s", "dip/s", "recovered/s", "ratio", "migrate_ms",
              "refreshes", "lost", "epoch");
  for (int i = 0; i < 2; ++i) {
    results[i] = run_flavor(flavors[i], clients_per_dc, rtt_ms, steady, post);
    const FlavorResult& r = results[i];
    std::printf("%8s %10.0f %9.0f %11.0f %10.2f%% %11.1f %9llu %6llu %5lld\n",
                to_string(flavors[i]), r.steady_per_s, r.dip_min_window_per_s,
                r.recovered_per_s, r.recovered_ratio * 100.0, r.migration_ms,
                static_cast<unsigned long long>(r.view_refreshes),
                static_cast<unsigned long long>(r.lost_writes),
                static_cast<long long>(r.final_epoch));
  }

  // Acceptance on the SpecRPC row: migration completed under traffic, zero
  // lost committed writes, recovered throughput >= 90% of steady state.
  const FlavorResult& spec = results[1];
  const bool accept = spec.migrate_ok && spec.lost_writes == 0 &&
                      spec.recovered_ratio >= 0.9;
  std::printf("\nmigration %s under traffic; lost_writes=%llu; "
              "recovered %.1f%% of steady (accept>=90%%: %s)\n",
              spec.migrate_ok ? "completed" : "DID NOT COMPLETE",
              static_cast<unsigned long long>(spec.lost_writes),
              spec.recovered_ratio * 100.0, accept ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_reconfig.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_reconfig.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"clients_per_dc\": %d,\n  \"rtt_ms\": %.1f,\n"
               "  \"steady_s\": %.2f,\n  \"post_s\": %.2f,\n"
               "  \"counter_keys\": %d,\n  \"flavors\": {\n",
               clients_per_dc, rtt_ms, to_ms(steady) / 1000.0,
               to_ms(post) / 1000.0, kCounters);
  for (int i = 0; i < 2; ++i) {
    const FlavorResult& r = results[i];
    std::fprintf(
        f,
        "    \"%s\": {\"migrate_ok\": %s, \"migration_ms\": %.1f, "
        "\"final_epoch\": %lld,\n"
        "      \"committed\": %llu, \"aborted\": %llu, "
        "\"view_refreshes\": %llu, \"lost_writes\": %llu,\n"
        "      \"steady_per_s\": %.0f, \"dip_min_window_per_s\": %.0f, "
        "\"recovered_per_s\": %.0f, \"recovered_ratio\": %.4f}%s\n",
        to_string(flavors[i]), r.migrate_ok ? "true" : "false",
        r.migration_ms, static_cast<long long>(r.final_epoch),
        static_cast<unsigned long long>(r.committed),
        static_cast<unsigned long long>(r.aborted),
        static_cast<unsigned long long>(r.view_refreshes),
        static_cast<unsigned long long>(r.lost_writes), r.steady_per_s,
        r.dip_min_window_per_s, r.recovered_per_s, r.recovered_ratio,
        i == 0 ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"accept_recovered_0p9\": %s,\n"
               "  \"accept_zero_lost_writes\": %s\n}\n",
               accept ? "true" : "false",
               spec.lost_writes == 0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_reconfig.json\n");
  // Exit 0 regardless: sanitizer smokes run this binary with tiny windows
  // where the ratios are noise; the JSON records the acceptance verdicts.
  return 0;
}
