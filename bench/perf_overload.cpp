// Overload-protection bench (DESIGN.md §11): open-loop goodput ramp of a
// client/server SpecEngine pair under a pathologically misprediction-heavy
// workload, three governance configs side by side. Writes
// BENCH_overload.json (cwd).
//
// Scenario: the server's "work" method burns work_us of CPU and returns a
// value the client-side predictor never guesses (worst-case accuracy —
// every speculative branch is wasted). The dependent callback burns cb_us,
// with cb_us >> work_us, so an incorrect prediction roughly doubles a
// call's service demand (speculative run + re-execution). Arrivals are
// open-loop at a fraction of the analytic saturation rate
// threads / (work_us + cb_us); past 1.0x the executor queue grows and
// goodput is bounded by service capacity:
//
//   trad      no prediction supplier — the TradRPC floor (callback runs
//             once, on the actual).
//   always    SpeculationManager with an always-wrong predictor, no
//             governance: service demand ~2x trad, so under overload
//             goodput collapses to roughly half the floor.
//   governed  same manager + speculation budget (SpecBudget) + an
//             AdmissionController fed by the executor's queue depth:
//             under pressure speculation degrades to TradRPC and goodput
//             stays near the floor.
//
// Acceptance (ISSUE 7), evaluated at the highest load point (default 2x):
//   gap(mode) = (trad - mode) / trad goodput
//   governed: gap <= 0.15       (within 15% of the TradRPC floor)
//   always:   gap >= max(0.15, 2 * gap_governed)   (>= 2x worse)
// Recorded in the JSON (exit status stays 0: sanitizer smokes run this
// binary with tiny windows where the ratios are noise).
//
// Env knobs:
//   SPECRPC_OVERLOAD_SECS     seconds per measured point   (default 1.0)
//   SPECRPC_OVERLOAD_THREADS  executor worker threads      (default 8)
//   SPECRPC_OVERLOAD_WORK_US  server handler spin          (default 40)
//   SPECRPC_OVERLOAD_CB_US    dependent-callback spin      (default 160)
//   SPECRPC_OVERLOAD_FRACS    comma list of load fractions (default
//                             "0.5,1,2")
//   SPECRPC_OVERLOAD_BUDGET   governed spec budget         (default 32)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/executor.h"
#include "common/timer_wheel.h"
#include "common/types.h"
#include "predict/admission.h"
#include "predict/manager.h"
#include "predict/predictor.h"
#include "specrpc/engine.h"
#include "transport/transport.h"

namespace {

using namespace srpc;
using namespace srpc::spec;

constexpr int kGeneratorThreads = 2;

/// Zero-latency pipe (same shape as perf_engine_scale): send() posts the
/// peer's delivery to the shared executor, so callbacks, handlers and
/// validations all compete for the same worker pool — which is exactly the
/// resource the admission controller watches.
class DirectTransport final : public Transport {
 public:
  DirectTransport(Address addr, Executor& executor)
      : addr_(std::move(addr)), executor_(executor) {}

  void peer(DirectTransport* p) { peer_ = p; }

  const Address& address() const override { return addr_; }

  bool send(const Address&, Bytes payload) override {
    DirectTransport* p = peer_;
    if (p != nullptr) p->deliver(addr_, std::move(payload));
    return p != nullptr;
  }

  void set_receiver(Receiver receiver) override {
    std::lock_guard<std::mutex> lock(mu_);
    receiver_ = std::make_shared<Receiver>(std::move(receiver));
  }

  void quiesce() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

 private:
  void deliver(const Address& src, Bytes payload) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++in_flight_;
    }
    const bool posted =
        executor_.post([this, src, payload = std::move(payload)]() mutable {
          std::shared_ptr<Receiver> r;
          {
            std::lock_guard<std::mutex> lock(mu_);
            r = receiver_;
          }
          if (r != nullptr && *r) (*r)(src, std::move(payload));
          {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
          }
          cv_.notify_all();
        });
    if (!posted) {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      cv_.notify_all();
    }
  }

  Address addr_;
  Executor& executor_;
  DirectTransport* peer_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Receiver> receiver_;
  int in_flight_ = 0;
};

void spin_for(std::chrono::microseconds us) {
  const TimePoint end = Clock::now() + us;
  while (Clock::now() < end) {
  }
}

/// Worst-case predictor: always has a candidate, never the right one (the
/// server returns non-negative values only). Models a predictor whose
/// learned distribution has gone stale under a workload shift — the
/// situation overload protection exists for.
class AlwaysWrongPredictor final : public predict::Predictor {
 public:
  ValueList predict(const std::string&, const ValueList&) override {
    return {Value(std::int64_t{-1})};
  }
  void learn(const std::string&, const ValueList&, const Value&) override {}
  std::size_t size() const override { return 0; }
  const char* name() const override { return "always-wrong"; }
};

enum class Mode { kTrad, kAlways, kGoverned };

constexpr const char* to_string(Mode m) {
  switch (m) {
    case Mode::kTrad: return "trad";
    case Mode::kAlways: return "always";
    case Mode::kGoverned: return "governed";
  }
  return "?";
}

struct PhaseResult {
  double goodput = 0;             // ok-completions/s inside the window
  std::uint64_t issued = 0;       // calls issued over the whole phase
  std::uint64_t budget_denied = 0;
  std::uint64_t admission_shed = 0;
  std::uint64_t escalations = 0;
  std::uint64_t callbacks_spawned = 0;
};

struct Knobs {
  double secs = 1.0;
  int threads = 8;
  int work_us = 40;
  int cb_us = 160;
  std::size_t budget = 32;
};

/// One measured point: `offered` open-loop calls/s against a fresh
/// client/server pair in `mode`, measured for ~knobs.secs after a 25%
/// warmup. Generators keep issuing regardless of completions (open loop);
/// the phase then stops arrivals and drains everything through shutdown so
/// phases cannot contaminate each other.
PhaseResult run_phase(Mode mode, double offered, const Knobs& knobs) {
  Executor executor(static_cast<std::size_t>(knobs.threads), "overload");
  DirectTransport client_pipe("client", executor);
  DirectTransport server_pipe("server", executor);
  client_pipe.peer(&server_pipe);
  server_pipe.peer(&client_pipe);
  TimerWheel wheel;

  SpecConfig config;
  config.call_timeout = Duration::zero();  // goodput counts completions

  std::unique_ptr<predict::SpeculationManager> manager;
  std::shared_ptr<predict::AdmissionController> admission;
  if (mode != Mode::kTrad) {
    manager = std::make_unique<predict::SpeculationManager>(
        std::make_shared<AlwaysWrongPredictor>());
    manager->install(config);
  }
  if (mode == Mode::kGoverned) {
    config.budget.max_inflight = knobs.budget;
    predict::AdmissionConfig acfg;
    // Thresholds sized to the pool: a queue a few times deeper than the
    // worker count means arrivals outrun service — stop feeding it wasted
    // speculative work.
    acfg.queue_hi = static_cast<std::size_t>(knobs.threads) * 8;
    acfg.queue_lo = static_cast<std::size_t>(knobs.threads);
    acfg.poll_interval = std::chrono::milliseconds(1);
    admission = std::make_shared<predict::AdmissionController>(
        acfg, &manager->tracker());
    admission->add_source([exec = &executor] {
      predict::PressureSample s;
      s.queue_depth = exec->queue_depth();
      return s;
    });
    manager->set_admission(admission);
  }

  SpecEngine client(client_pipe, executor, wheel, config);
  SpecEngine server(server_pipe, executor, wheel, SpecConfig{});
  const int work_us = knobs.work_us;
  server.register_method("work", Handler([work_us](const ServerCallPtr& c) {
    spin_for(std::chrono::microseconds(work_us));
    c->finish(Value(c->args()[0].as_int() + 1));
  }));

  const int cb_us = knobs.cb_us;
  CallbackFactory factory = [cb_us]() -> CallbackFn {
    return [cb_us](SpecContext&, const Value& v) -> CallbackResult {
      spin_for(std::chrono::microseconds(cb_us));
      return v;
    };
  };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> issued{0};
  std::vector<std::thread> generators;
  generators.reserve(kGeneratorThreads);
  const std::chrono::duration<double> interval(kGeneratorThreads / offered);
  for (int g = 0; g < kGeneratorThreads; ++g) {
    generators.emplace_back([&, g] {
      std::int64_t seq = g * 100'000'000;
      TimePoint next = Clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        issued.fetch_add(1, std::memory_order_relaxed);
        auto f = client.call("server", "work", make_args(seq++), {}, factory);
        f->then([&completed](const Outcome& o) {
          if (o.ok) completed.fetch_add(1, std::memory_order_relaxed);
        });
        next += std::chrono::duration_cast<Duration>(interval);
        // Open loop: if issuing fell behind the schedule, catch up by
        // issuing back-to-back; re-anchor only after a gross stall so a
        // descheduled generator doesn't burst-dump its whole backlog.
        if (next < Clock::now() - std::chrono::milliseconds(250)) {
          next = Clock::now();
        }
        std::this_thread::sleep_until(next);
      }
    });
  }

  const double warmup = knobs.secs * 0.25;
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  const std::uint64_t base = completed.load();
  const TimePoint start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(knobs.secs));
  const std::uint64_t done = completed.load() - base;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  stop.store(true);
  for (auto& g : generators) g.join();

  PhaseResult out;
  out.goodput = static_cast<double>(done) / elapsed;
  out.issued = issued.load();
  const SpecStats cs = client.stats();
  out.budget_denied = cs.budget_denied;
  out.callbacks_spawned = cs.callbacks_spawned;
  if (manager) out.admission_shed = manager->stats().admission_shed;
  if (admission) out.escalations = admission->stats().escalations;

  client.begin_shutdown();
  server.begin_shutdown();
  executor.shutdown();
  return out;
}

std::vector<double> load_fracs() {
  const std::string spec = env_str("SPECRPC_OVERLOAD_FRACS", "0.5,1,2");
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double gap_vs(double trad, double mode) {
  if (trad <= 0) return 0;
  return std::max(0.0, (trad - mode) / trad);
}

}  // namespace

int main() {
  Knobs knobs;
  knobs.secs = env_double("SPECRPC_OVERLOAD_SECS", 1.0);
  // Default the pool to the hardware so the analytic saturation rate is
  // meaningful: with more spinning workers than cores the "offered" axis
  // compresses, though the mode comparison stays valid (same load).
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  knobs.threads = static_cast<int>(
      env_long("SPECRPC_OVERLOAD_THREADS", std::clamp(hw, 2L, 8L)));
  knobs.work_us = static_cast<int>(env_long("SPECRPC_OVERLOAD_WORK_US", 40));
  knobs.cb_us = static_cast<int>(env_long("SPECRPC_OVERLOAD_CB_US", 160));
  knobs.budget = static_cast<std::size_t>(
      env_long("SPECRPC_OVERLOAD_BUDGET", 32));
  const std::vector<double> fracs = load_fracs();

  // Analytic saturation of the trad config: every call costs one handler
  // spin plus one callback spin on the shared pool.
  const double sat =
      knobs.threads / (static_cast<double>(knobs.work_us + knobs.cb_us) * 1e-6);

  std::printf("overload ramp: %d workers, work=%dus cb=%dus, "
              "sat=%.0f calls/s, %.1fs per point, budget=%zu\n\n",
              knobs.threads, knobs.work_us, knobs.cb_us, sat, knobs.secs,
              knobs.budget);
  std::printf("%6s %10s %10s %10s %10s %9s %9s\n", "load", "offered",
              "trad/s", "always/s", "govern/s", "gap_alw", "gap_gov");

  struct Point {
    double frac = 0;
    double offered = 0;
    PhaseResult trad, always, governed;
  };
  std::vector<Point> points;
  points.reserve(fracs.size());
  for (const double frac : fracs) {
    Point p;
    p.frac = frac;
    p.offered = frac * sat;
    p.trad = run_phase(Mode::kTrad, p.offered, knobs);
    p.always = run_phase(Mode::kAlways, p.offered, knobs);
    p.governed = run_phase(Mode::kGoverned, p.offered, knobs);
    std::printf("%5.2fx %10.0f %10.0f %10.0f %10.0f %8.1f%% %8.1f%%\n",
                frac, p.offered, p.trad.goodput, p.always.goodput,
                p.governed.goodput,
                100 * gap_vs(p.trad.goodput, p.always.goodput),
                100 * gap_vs(p.trad.goodput, p.governed.goodput));
    points.push_back(p);
  }

  // Acceptance at the highest load point.
  const Point& peak = points.back();
  const double gap_gov = gap_vs(peak.trad.goodput, peak.governed.goodput);
  const double gap_alw = gap_vs(peak.trad.goodput, peak.always.goodput);
  const bool accept_governed = gap_gov <= 0.15;
  const bool accept_always = gap_alw >= std::max(0.15, 2 * gap_gov);
  std::printf("\npeak %.2fx: governed gap %.1f%% (accept<=15%%: %s), "
              "always gap %.1f%% (accept>=2x governed: %s)\n",
              peak.frac, 100 * gap_gov, accept_governed ? "yes" : "NO",
              100 * gap_alw, accept_always ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_overload.json");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"work_us\": %d,\n"
               "  \"cb_us\": %d,\n  \"budget\": %zu,\n"
               "  \"sat_calls_per_sec\": %.0f,\n  \"points\": [\n",
               knobs.threads, knobs.work_us, knobs.cb_us, knobs.budget, sat);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        f,
        "    {\"load_frac\": %.3f, \"offered_per_sec\": %.0f,\n"
        "     \"trad_goodput\": %.0f, \"always_goodput\": %.0f, "
        "\"governed_goodput\": %.0f,\n"
        "     \"gap_always\": %.4f, \"gap_governed\": %.4f,\n"
        "     \"governed_budget_denied\": %llu, "
        "\"governed_admission_shed\": %llu, "
        "\"governed_escalations\": %llu,\n"
        "     \"always_callbacks\": %llu, \"governed_callbacks\": %llu}%s\n",
        p.frac, p.offered, p.trad.goodput, p.always.goodput,
        p.governed.goodput, gap_vs(p.trad.goodput, p.always.goodput),
        gap_vs(p.trad.goodput, p.governed.goodput),
        static_cast<unsigned long long>(p.governed.budget_denied),
        static_cast<unsigned long long>(p.governed.admission_shed),
        static_cast<unsigned long long>(p.governed.escalations),
        static_cast<unsigned long long>(p.always.callbacks_spawned),
        static_cast<unsigned long long>(p.governed.callbacks_spawned),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"peak_gap_governed\": %.4f,\n"
               "  \"peak_gap_always\": %.4f,\n"
               "  \"accept_governed_within_15pct\": %s,\n"
               "  \"accept_always_2x_worse\": %s\n}\n",
               gap_gov, gap_alw, accept_governed ? "true" : "false",
               accept_always ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_overload.json\n");
  return 0;
}
