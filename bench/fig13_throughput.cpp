// Figure 13: mean transaction completion time versus throughput with RC
// servers limited to 2 or 3 (virtual) cores, 5 ms inter-DC RTT, Retwis.
//
// The paper saturates the servers by reducing their CPU resources; this
// container has one physical core, so server capacity is modelled with
// CpuModel virtual cores and explicit per-request processing costs
// (DESIGN.md §3). Offered load is swept by growing the closed-loop client
// count.
//
// Paper shape: near-perfect throughput scaling from 2 to 3 cores for all
// systems; peak throughput TradRPC > SpecRPC > gRPC (speculation costs
// some CPU, gRPC's feature overhead costs more); SpecRPC's completion-time
// floor (~14 ms) is unreachable for the baselines at any load.
#include <cstdio>

#include "rc_bench_util.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 13",
                "RC latency vs throughput, 2 vs 3 server cores, 5 ms RTT");

  // Per-request CPU costs (virtual-core occupancy), chosen so a handful of
  // closed-loop clients saturates 2 cores.
  // Costs are large enough that the *modeled* cores saturate well before
  // the host machine does (this reproduction runs on one physical core).
  rc::ServerCosts base_costs;
  base_costs.read = from_ms(0.5 * latency_scale() / 0.1);
  base_costs.prepare = from_ms(1.5 * latency_scale() / 0.1);
  base_costs.apply = from_ms(0.75 * latency_scale() / 0.1);
  base_costs.commit = from_ms(2.5 * latency_scale() / 0.1);
  // Framework CPU multipliers, reproducing the paper's peak-throughput
  // ordering and its stated causes: gRPC's extra features cost the most
  // CPU; SpecRPC pays a small speculation-bookkeeping overhead over
  // TradRPC ("SpecRPC's throughput is lower than TradRPC's due to
  // speculation overhead. Surprisingly, gRPC has a lower throughput than
  // both other systems", §5.2.3).
  auto costs_for = [&](Flavor flavor) {
    const double mult = flavor == Flavor::kGrpc   ? 1.18
                        : flavor == Flavor::kSpec ? 1.06
                                                  : 1.0;
    rc::ServerCosts c;
    c.read = std::chrono::duration_cast<Duration>(base_costs.read * mult);
    c.prepare =
        std::chrono::duration_cast<Duration>(base_costs.prepare * mult);
    c.apply = std::chrono::duration_cast<Duration>(base_costs.apply * mult);
    c.commit = std::chrono::duration_cast<Duration>(base_costs.commit * mult);
    return c;
  };

  bench::Table table({"framework", "cores", "clients/DC",
                      "throughput (txn/s)", "mean completion (ms, "
                      "paper-scale)"});
  for (Flavor flavor : kAllFlavors) {
    for (int cores : {2, 3}) {
      for (int clients : {2, 8, 24}) {
        auto config = bench::rc_config(flavor);
        config.geo = uniform_geo(5.0);
        config.geo.scale = latency_scale();
        config.clients_per_dc = clients;
        config.server_cores = cores;
        config.costs = costs_for(flavor);
        rc::RcCluster cluster(config);
        wl::RetwisConfig workload;
        workload.num_keys = config.num_keys;
        auto result = wl::run_rc_closed_loop(
            cluster,
            bench::retwis_factory(workload, 40'000 + clients * 10 + cores),
            bench::warmup(), bench::measure());
        std::printf("  [%s cores=%d clients/DC=%d] %.1f txn/s, %.1f ms\n",
                    to_string(flavor), cores, clients,
                    result.committed_per_s(),
                    bench::descale_ms(result.txn_latency.mean_ms()));
        table.row({to_string(flavor), std::to_string(cores),
                   std::to_string(clients),
                   bench::fmt(result.committed_per_s(), 1),
                   bench::fmt(
                       bench::descale_ms(result.txn_latency.mean_ms()), 1)});
      }
    }
  }
  table.print();
  std::printf("\nPaper shape: ~1.5x peak throughput from 2 -> 3 cores; peak "
              "TradRPC > SpecRPC > gRPC; SpecRPC's latency floor is below "
              "anything the baselines reach.\n");
  return 0;
}
