// Framework micro-costs (google-benchmark): serialization codecs, wire
// round trips, dependency-tree node churn, histogram recording, workload
// generators. These quantify the constant factors behind Figure 8's ~0.1 ms
// SpecRPC overhead and Figure 8c's codec gap.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rpc/wire.h"
#include "serde/codec.h"
#include "serde/io.h"
#include "specrpc/wire.h"
#include "stats/histogram.h"
#include "workload/retwis.h"
#include "workload/ycsbt.h"

#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace {

using namespace srpc;  // NOLINT

Value sample_value() {
  ValueList list;
  list.emplace_back(std::string(64, 'x'));
  list.emplace_back(static_cast<std::int64_t>(123456789));
  list.emplace_back(3.14159);
  ValueMap map;
  map.emplace("key", Value("value"));
  map.emplace("version", Value(42));
  list.emplace_back(std::move(map));
  return Value(std::move(list));
}

void BM_BinaryCodecEncode(benchmark::State& state) {
  const Value v = sample_value();
  for (auto _ : state) {
    Bytes out;
    binary_codec().encode(v, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BinaryCodecEncode);

void BM_TaggedCodecEncode(benchmark::State& state) {
  const Value v = sample_value();
  for (auto _ : state) {
    Bytes out;
    tagged_codec().encode(v, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TaggedCodecEncode);

void BM_BinaryCodecRoundtrip(benchmark::State& state) {
  const Value v = sample_value();
  const Bytes encoded = binary_codec().encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(binary_codec().decode(encoded));
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_BinaryCodecRoundtrip);

void BM_TaggedCodecRoundtrip(benchmark::State& state) {
  const Value v = sample_value();
  const Bytes encoded = tagged_codec().encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagged_codec().decode(encoded));
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_TaggedCodecRoundtrip);

void BM_RpcRequestRoundtrip(benchmark::State& state) {
  rpc::Request req;
  req.call_id = 42;
  req.method = "rc.read";
  req.args.emplace_back(std::string(64, 'k'));
  for (auto _ : state) {
    const Bytes frame = rpc::encode_request(req, binary_codec());
    benchmark::DoNotOptimize(rpc::decode_request(frame, binary_codec()));
  }
}
BENCHMARK(BM_RpcRequestRoundtrip);

void BM_SpecRequestRoundtrip(benchmark::State& state) {
  spec::RequestMsg msg;
  msg.call_id = 42;
  msg.caller_speculative = true;
  msg.method = "rc.read";
  msg.args.emplace_back(std::string(64, 'k'));
  for (auto _ : state) {
    const Bytes frame = spec::encode(msg, binary_codec());
    benchmark::DoNotOptimize(spec::decode_request(frame, binary_codec()));
  }
}
BENCHMARK(BM_SpecRequestRoundtrip);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.record_us(static_cast<double>(rng.uniform(1'000'000)));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfSample(benchmark::State& state) {
  Zipf zipf(1'000'000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv_scramble(zipf.sample(rng), 1'000'000));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_YcsbtTxnGen(benchmark::State& state) {
  wl::YcsbtWorkload workload(wl::YcsbtConfig{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.next_txn());
  }
}
BENCHMARK(BM_YcsbtTxnGen);

void BM_RetwisTxnGen(benchmark::State& state) {
  wl::RetwisWorkload workload(wl::RetwisConfig{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.next_txn());
  }
}
BENCHMARK(BM_RetwisTxnGen);

// ------------------------------------------------------------------
// End-to-end round-trip cost per framework over a near-zero-latency
// simulated link: measures the per-call framework overhead directly (the
// source of Figure 8a's ~0.1 ms SpecRPC-vs-TradRPC delta and gRPC's
// feature overhead).

struct RoundTripFixture {
  RoundTripFixture() {
    SimConfig sim_config;
    sim_config.default_delay = std::chrono::microseconds(1);
    net = std::make_unique<SimNetwork>(sim_config);
    trad_server = std::make_unique<rpc::Node>(net->add_node("ts"),
                                              net->executor(), net->wheel());
    trad_client = std::make_unique<rpc::Node>(net->add_node("tc"),
                                              net->executor(), net->wheel());
    grpc_server = std::make_unique<grpcsim::GrpcNode>(
        net->add_node("gs"), net->executor(), net->wheel());
    grpc_client = std::make_unique<grpcsim::GrpcNode>(
        net->add_node("gc"), net->executor(), net->wheel());
    spec_server = std::make_unique<spec::SpecEngine>(
        net->add_node("ss"), net->executor(), net->wheel());
    spec_client = std::make_unique<spec::SpecEngine>(
        net->add_node("sc"), net->executor(), net->wheel());
    auto echo = [](const rpc::CallContext&, ValueList args,
                   rpc::Responder responder) {
      responder.finish(args.empty() ? Value() : args[0]);
    };
    trad_server->register_method("echo", echo);
    grpc_server->register_method("echo", echo);
    spec_server->register_method(
        "echo", spec::Handler([](const spec::ServerCallPtr& call) {
          call->finish(call->args().empty() ? Value() : call->args()[0]);
        }));
  }
  ~RoundTripFixture() {
    spec_client->begin_shutdown();
    spec_server->begin_shutdown();
  }

  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<rpc::Node> trad_server, trad_client;
  std::unique_ptr<grpcsim::GrpcNode> grpc_server, grpc_client;
  std::unique_ptr<spec::SpecEngine> spec_server, spec_client;
};

RoundTripFixture& fixture() {
  static RoundTripFixture f;
  return f;
}

void BM_RoundTripTradRpc(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.trad_client->call_sync("ts", "echo",
                                                      {Value(1)}));
  }
}
BENCHMARK(BM_RoundTripTradRpc)->Unit(benchmark::kMicrosecond);

void BM_RoundTripGrpcSim(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.grpc_client->call_sync("gs", "echo",
                                                      {Value(1)}));
  }
}
BENCHMARK(BM_RoundTripGrpcSim)->Unit(benchmark::kMicrosecond);

void BM_RoundTripSpecRpcNoPrediction(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.spec_client->call("ss", "echo", {Value(1)})->get());
  }
}
BENCHMARK(BM_RoundTripSpecRpcNoPrediction)->Unit(benchmark::kMicrosecond);

void BM_RoundTripSpecRpcCorrectPrediction(benchmark::State& state) {
  auto& f = fixture();
  auto factory = []() -> spec::CallbackFn {
    return [](spec::SpecContext&, const Value& v) -> spec::CallbackResult {
      return v;
    };
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.spec_client->call("ss", "echo", {Value(1)}, {Value(1)}, factory)
            ->get());
  }
}
BENCHMARK(BM_RoundTripSpecRpcCorrectPrediction)
    ->Unit(benchmark::kMicrosecond);

void BM_RoundTripSpecRpcWrongPrediction(benchmark::State& state) {
  auto& f = fixture();
  auto factory = []() -> spec::CallbackFn {
    return [](spec::SpecContext&, const Value& v) -> spec::CallbackResult {
      return v;
    };
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.spec_client->call("ss", "echo", {Value(1)}, {Value(2)}, factory)
            ->get());
  }
}
BENCHMARK(BM_RoundTripSpecRpcWrongPrediction)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
