// Prediction subsystem end-to-end: completion time under real predictors
// (src/predict) and the adaptive speculation gate. Writes BENCH_predict.json
// (cwd).
//
// Two §5.1-style microbench workloads on serialized servers (misspeculation
// queues behind real work, so wrong guesses cost):
//
//   high  Requests draw from a small key pool and server results are stable,
//         so a learned predictor becomes near-perfect. Acceptance: adaptive
//         recovers >= 90% of always-speculate's completion-time win over the
//         TradRPC baseline.
//   low   Same pool, but servers mix a counter into each result (adversarial:
//         every learned prediction is stale). Always-speculate triggers a
//         misspeculation storm — every chain level forks a wrong branch plus
//         a re-execution, multiplying server load. Acceptance: adaptive
//         closes its gate and stays within 10% of the no-speculation
//         baseline.
//
// Flags (also settable via env):
//   --predictor=last|topk|markov|cache   predictor kind    (default last)
//   --modes=trad,always,adaptive         which series to run (default all)
//   --workloads=high,low                 which workloads    (default both)
//   SPECRPC_PREDICT_WARMUP_S / SPECRPC_PREDICT_MEASURE_S   (default 4 / 3)
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "predict/predictor.h"
#include "workload/microbench.h"

namespace {

using namespace srpc;  // NOLINT

struct Point {
  std::string workload;
  std::string mode;
  double mean_ms = 0;
  double p99_ms = 0;
  std::uint64_t requests = 0;
  double hit_rate = 0;           // engine-observed prediction accuracy
  std::uint64_t predictions = 0;  // branches spawned from predictions
  std::uint64_t reexecutions = 0;
  std::uint64_t gate_suppressed = 0;  // calls the adaptive gate declined
};

// The warmup must cover predictor learning (key_space keys at 5 req/s),
// the adaptive gate closing (min_samples after the predictor warms), and
// the serialized servers draining the pre-close misspeculation backlog —
// the acceptance ratios are about steady state, not the transient.
Duration predict_warmup() {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(
      env_double("SPECRPC_PREDICT_WARMUP_S", 4.0)));
}

Duration predict_measure() {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(
      env_double("SPECRPC_PREDICT_MEASURE_S", 3.0)));
}

wl::MicroConfig make_config(bool adversarial, predict::Kind kind,
                            const std::string& mode) {
  wl::MicroConfig config;
  config.num_clients = 8;
  config.num_servers = 4;
  config.rpcs_per_request = 4;
  config.service_time = from_ms(10.0);
  config.requests_per_s = 5.0;  // 0.4 utilization/server without speculation
  config.seed = adversarial ? 31 : 17;
  // The workload twists apply to every mode, so baselines see the same
  // servers and the same offered load.
  config.predict.key_space = 8;
  config.predict.server_serial = true;
  config.predict.volatile_results = adversarial;
  if (mode == "trad") {
    config.flavor = Flavor::kTrad;
  } else {
    config.flavor = Flavor::kSpec;
    config.predict.kind = kind;
    config.predict.adaptive = (mode == "adaptive");
  }
  return config;
}

Point run_point(const std::string& workload, const std::string& mode,
                predict::Kind kind) {
  const auto config = make_config(workload == "low", kind, mode);
  const auto result =
      wl::run_microbench(config, predict_warmup(), predict_measure());
  Point p;
  p.workload = workload;
  p.mode = mode;
  p.mean_ms = result.mean_ms();
  p.p99_ms = result.latency.percentile_ms(99);
  p.requests = result.requests;
  p.hit_rate = result.prediction_hit_rate();
  p.predictions = result.spec.predictions_made;
  p.reexecutions = result.spec.reexecutions;
  p.gate_suppressed = result.managers.gate_suppressed;
  std::printf("  %-5s %-9s mean %7.2f ms  p99 %7.2f ms  hit %.2f  "
              "pred %llu  reexec %llu  gated %llu\n",
              workload.c_str(), mode.c_str(), p.mean_ms, p.p99_ms, p.hit_rate,
              static_cast<unsigned long long>(p.predictions),
              static_cast<unsigned long long>(p.reexecutions),
              static_cast<unsigned long long>(p.gate_suppressed));
  return p;
}

bool want(const std::string& csv, const std::string& item) {
  if (csv.empty()) return true;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (csv.substr(pos, end - pos) == item) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

const Point* find(const std::vector<Point>& points,
                  const std::string& workload, const std::string& mode) {
  for (const auto& p : points) {
    if (p.workload == workload && p.mode == mode) return &p;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string predictor = "last";
  std::string modes;      // empty = all
  std::string workloads;  // empty = all
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--predictor=", 12) == 0) {
      predictor = arg + 12;
    } else if (std::strncmp(arg, "--modes=", 8) == 0) {
      modes = arg + 8;
    } else if (std::strncmp(arg, "--workloads=", 12) == 0) {
      workloads = arg + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--predictor=last|topk|markov|cache] "
                   "[--modes=trad,always,adaptive] [--workloads=high,low]\n",
                   argv[0]);
      return 2;
    }
  }
  predict::Kind kind;
  try {
    kind = predict::parse_kind(predictor);
  } catch (const std::invalid_argument&) {
    kind = predict::Kind::kNone;
  }
  if (kind == predict::Kind::kNone) {
    std::fprintf(stderr, "unknown predictor '%s'\n", predictor.c_str());
    return 2;
  }

  bench::banner("perf_predict",
                "adaptive speculation vs always/never under real predictors");
  // The generic banner prints the generic bench windows; this bench uses
  // its own (longer — the gate has to converge before measuring).
  std::printf("predictor: %s  (warmup %.2gs, measure %.2gs per point)\n\n",
              predictor.c_str(),
              std::chrono::duration<double>(predict_warmup()).count(),
              std::chrono::duration<double>(predict_measure()).count());

  std::vector<Point> points;
  for (const char* workload : {"high", "low"}) {
    if (!want(workloads, workload)) continue;
    for (const char* mode : {"trad", "always", "adaptive"}) {
      if (!want(modes, mode)) continue;
      points.push_back(run_point(workload, mode, kind));
    }
  }

  bench::Table table({"workload", "mode", "mean (ms)", "p99 (ms)",
                      "hit rate", "reexecs", "gated"});
  for (const auto& p : points) {
    table.row({p.workload, p.mode, bench::fmt(p.mean_ms),
               bench::fmt(p.p99_ms), bench::fmt(p.hit_rate),
               std::to_string(p.reexecutions),
               std::to_string(p.gate_suppressed)});
  }
  std::printf("\n");
  table.print();

  // Acceptance ratios (meaningful only when all six points ran).
  double high_recovery = -1;
  double low_overhead = -1;
  const Point* ht = find(points, "high", "trad");
  const Point* ha = find(points, "high", "always");
  const Point* hd = find(points, "high", "adaptive");
  if (ht && ha && hd && ht->mean_ms > ha->mean_ms) {
    high_recovery = (ht->mean_ms - hd->mean_ms) / (ht->mean_ms - ha->mean_ms);
    std::printf("\nhigh: adaptive recovers %.0f%% of always-speculate's win "
                "over TradRPC (acceptance: >= 90%%)\n",
                100.0 * high_recovery);
  }
  const Point* lt = find(points, "low", "trad");
  const Point* ld = find(points, "low", "adaptive");
  if (lt && ld && lt->mean_ms > 0) {
    low_overhead = ld->mean_ms / lt->mean_ms - 1.0;
    std::printf("low:  adaptive is %+.1f%% vs the no-speculation baseline "
                "(acceptance: within 10%%)\n",
                100.0 * low_overhead);
  }

  FILE* f = std::fopen("BENCH_predict.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_predict.json");
    return 1;
  }
  std::fprintf(f, "{\n  \"predictor\": \"%s\",\n  \"points\": [\n",
               predictor.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"mode\": \"%s\", \"mean_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"requests\": %llu, \"hit_rate\": %.4f, "
        "\"predictions\": %llu, \"reexecutions\": %llu, "
        "\"gate_suppressed\": %llu}%s\n",
        p.workload.c_str(), p.mode.c_str(), p.mean_ms, p.p99_ms,
        static_cast<unsigned long long>(p.requests), p.hit_rate,
        static_cast<unsigned long long>(p.predictions),
        static_cast<unsigned long long>(p.reexecutions),
        static_cast<unsigned long long>(p.gate_suppressed),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"high_recovery_of_always_win\": %.4f,\n"
               "  \"low_overhead_vs_baseline\": %.4f,\n"
               "  \"high_pass\": %s,\n  \"low_pass\": %s\n}\n",
               high_recovery, low_overhead,
               high_recovery >= 0.9 ? "true" : "false",
               (low_overhead >= -1 && low_overhead <= 0.10) ? "true"
                                                            : "false");
  std::fclose(f);
  std::printf("\nwrote BENCH_predict.json\n");
  return 0;
}
