// Shared setup for the Replicated Commit benches (Figures 9-13).
#pragma once

#include <memory>

#include "bench_util.h"
#include "rc/cluster.h"
#include "workload/retwis.h"
#include "workload/runner.h"
#include "workload/ycsbt.h"

namespace srpc::bench {

/// Table 1 geo topology at the global latency scale. Fewer clients per DC
/// than the paper's 16 by default — this reproduction runs on a single
/// physical core, and the latency experiments are load-independent (closed
/// loop, under-saturated). Override with SPECRPC_CLIENTS_PER_DC.
inline rc::ClusterConfig rc_config(Flavor flavor) {
  rc::ClusterConfig config;
  config.flavor = flavor;
  config.geo.scale = latency_scale();
  config.clients_per_dc =
      static_cast<int>(env_long("SPECRPC_CLIENTS_PER_DC", 8));
  config.num_keys =
      static_cast<std::size_t>(env_long("SPECRPC_NUM_KEYS", 20'000));
  return config;
}

inline wl::WorkloadFactory ycsbt_factory(wl::YcsbtConfig workload_config,
                                         std::uint64_t seed_base) {
  return [workload_config, seed_base](int client_index) {
    auto workload = std::make_shared<wl::YcsbtWorkload>(
        workload_config, seed_base + static_cast<std::uint64_t>(client_index));
    return [workload] { return workload->next_txn(); };
  };
}

inline wl::WorkloadFactory retwis_factory(wl::RetwisConfig workload_config,
                                          std::uint64_t seed_base) {
  return [workload_config, seed_base](int client_index) {
    auto workload = std::make_shared<wl::RetwisWorkload>(
        workload_config, seed_base + static_cast<std::uint64_t>(client_index));
    return [workload] { return workload->next_txn().ops; };
  };
}

/// De-scales a measured latency back to paper scale for display.
inline double descale_ms(double ms) { return ms / latency_scale(); }

}  // namespace srpc::bench
