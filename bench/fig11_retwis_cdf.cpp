// Figure 11: CDF of transaction completion time under the Retwis workload
// (Table 2 profile, Zipf alpha 0.75, Table 1 RTTs).
//
// Paper shape: SpecRPC's CDF sits well to the left of gRPC/TradRPC (mean
// completion time reduced by 58%); the baselines' curves are step-like
// (transaction types with different read-chain lengths), SpecRPC's much
// steeper (reads overlap, so chain length barely matters).
#include <cstdio>

#include "rc_bench_util.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 11", "Retwis transaction completion time CDF");

  struct Series {
    Flavor flavor;
    stats::Histogram hist;
    double mean_ms = 0;
  };
  std::vector<Series> series;
  for (Flavor flavor : kAllFlavors) {
    auto config = bench::rc_config(flavor);
    rc::RcCluster cluster(config);
    wl::RetwisConfig workload;
    workload.num_keys = config.num_keys;
    auto result =
        wl::run_rc_closed_loop(cluster, bench::retwis_factory(workload, 777),
                               bench::warmup(), bench::measure());
    Series s{flavor, result.txn_latency,
             bench::descale_ms(result.txn_latency.mean_ms())};
    series.push_back(std::move(s));
  }

  bench::Table table({"percentile", "gRPC (ms)", "TradRPC (ms)",
                      "SpecRPC (ms)"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::vector<std::string> row{bench::fmt(p, 0)};
    for (auto& s : series) {
      row.push_back(
          bench::fmt(bench::descale_ms(s.hist.percentile_ms(p)), 1));
    }
    table.row(row);
  }
  table.print();

  std::printf("\nmean completion (paper-scale ms): gRPC %.1f, TradRPC %.1f, "
              "SpecRPC %.1f\n",
              series[0].mean_ms, series[1].mean_ms, series[2].mean_ms);
  std::printf("SpecRPC mean reduction vs gRPC: %.0f%% (paper: 58%%)\n",
              100.0 * (1.0 - series[2].mean_ms / series[0].mean_ms));
  return 0;
}
