// Figure 12: (a) abort rate and (b) committed/aborted transactions per
// second versus the Zipfian alpha (contention), Retwis workload, closed
// loop with a fixed number of clients.
//
// Paper shape: abort rates stay low until alpha ~0.9 and then climb for all
// three systems, SpecRPC's only marginally higher (~1% at alpha 0.9) even
// though it commits ~2x the transactions of the baselines in the same
// closed loop (its transactions are half as long).
#include <cstdio>

#include "rc_bench_util.h"

int main() {
  using namespace srpc;  // NOLINT
  bench::banner("Figure 12", "Retwis abort rate & throughput vs Zipf alpha");

  bench::Table table({"alpha", "framework", "abort rate (%)",
                      "committed/s", "aborted/s"});
  for (double alpha : {0.5, 0.7, 0.9, 1.1, 1.3}) {
    for (Flavor flavor : kAllFlavors) {
      auto config = bench::rc_config(flavor);
      rc::RcCluster cluster(config);
      wl::RetwisConfig workload;
      workload.zipf_alpha = alpha;
      workload.num_keys = config.num_keys;
      auto result = wl::run_rc_closed_loop(
          cluster,
          bench::retwis_factory(workload,
                                30'000 + static_cast<int>(alpha * 100)),
          bench::warmup(), bench::measure());
      table.row({bench::fmt(alpha, 1), to_string(flavor),
                 bench::fmt(100.0 * result.abort_rate(), 2),
                 bench::fmt(result.committed_per_s(), 1),
                 bench::fmt(result.aborted / result.elapsed_s, 1)});
    }
  }
  table.print();
  std::printf("\nPaper shape: SpecRPC commits ~2x the baselines' txns/s at "
              "every alpha, with only a marginally higher abort rate "
              "(~+1%% at alpha 0.9).\n");
  return 0;
}
