// rc_shell — a scriptable shell over the geo-replicated Replicated Commit
// store, running SpecRPC speculative reads underneath.
//
// Usage:
//   ./rc_shell                      # interactive (reads commands from stdin)
//   echo "put k v
//         get k" | ./rc_shell       # scripted
//   ./rc_shell --demo               # runs a built-in self-checking script
//
// Commands:
//   get <key> [<key>...]       one transaction of dependent quorum reads
//   put <key> <value> [...]    one transaction of buffered writes
//   txn <op> [...]             mixed txn: r:<key> or w:<key>=<value>
//   incr <key>                 read-modify-write increment (run_transform)
//   stats                      speculation statistics so far
//   flavor                     which RPC framework the shell is using
//   help / quit
#include <iostream>
#include <sstream>
#include <string>

#include "common/env.h"
#include "rc/cluster.h"

using namespace srpc;      // NOLINT
using namespace srpc::rc;  // NOLINT

namespace {

void print_result(const TxnResult& result) {
  std::cout << (result.committed ? "committed" : "ABORTED") << " in "
            << to_ms(result.total) << " ms";
  if (!result.read_only && result.committed) {
    std::cout << " (commit phase " << to_ms(result.commit_phase) << " ms)";
  }
  std::cout << "\n";
  for (const auto& read : result.reads) {
    std::cout << "  " << read.key << " = \"" << read.value << "\" (v"
              << read.version << ")\n";
  }
}

int run_shell(std::istream& in, bool echo) {
  ClusterConfig config;
  config.flavor = Flavor::kSpec;
  config.geo.scale = env_double("SPECRPC_LAT_SCALE", 0.1);
  config.clients_per_dc = 1;
  config.num_keys = static_cast<std::size_t>(
      env_long("SPECRPC_NUM_KEYS", 10'000));
  RcCluster cluster(config);
  auto& client = cluster.client(0, 0);  // we are "in Oregon"
  std::cout << "rc_shell: 3 DCs (Table 1 RTTs x" << config.geo.scale
            << "), " << config.num_keys << " keys, client in "
            << config.geo.dc_names[0] << ". Type 'help'.\n";

  int failures = 0;
  std::string line;
  while ((echo ? std::cout << "> " : std::cout), std::getline(in, line)) {
    if (echo) std::cout << line << "\n";
    std::istringstream words(line);
    std::string cmd;
    if (!(words >> cmd) || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        std::cout << "get <k>... | put <k> <v>... | txn r:<k> w:<k>=<v>... |"
                     " incr <k> | stats | flavor | quit\n";
      } else if (cmd == "flavor") {
        std::cout << to_string(config.flavor) << "\n";
      } else if (cmd == "stats") {
        const auto s = cluster.spec_stats();
        std::cout << "quorum calls " << s.quorum_calls_issued
                  << ", predictions " << s.predictions_correct << "/"
                  << s.predictions_made << " correct, spec_blocks "
                  << s.spec_blocks << ", abandoned " << s.branches_abandoned
                  << "\n";
      } else if (cmd == "get") {
        std::vector<Op> ops;
        std::string key;
        while (words >> key) ops.push_back(Op{true, key, {}});
        if (ops.empty()) throw std::runtime_error("get needs keys");
        print_result(client.run(ops));
      } else if (cmd == "put") {
        std::vector<Op> ops;
        std::string key;
        std::string value;
        while (words >> key >> value) ops.push_back(Op{false, key, value});
        if (ops.empty()) throw std::runtime_error("put needs key value");
        print_result(client.run(ops));
      } else if (cmd == "txn") {
        std::vector<Op> ops;
        std::string spec;
        while (words >> spec) {
          if (spec.rfind("r:", 0) == 0) {
            ops.push_back(Op{true, spec.substr(2), {}});
          } else if (spec.rfind("w:", 0) == 0) {
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
              throw std::runtime_error("w:<key>=<value>");
            ops.push_back(Op{false, spec.substr(2, eq - 2),
                             spec.substr(eq + 1)});
          } else {
            throw std::runtime_error("ops are r:<k> or w:<k>=<v>");
          }
        }
        if (ops.empty()) throw std::runtime_error("txn needs ops");
        print_result(client.run(ops));
      } else if (cmd == "incr") {
        std::string key;
        if (!(words >> key)) throw std::runtime_error("incr needs a key");
        auto result = client.run_transform(key, [](const std::string& v) {
          int n = 0;
          try {
            n = std::stoi(v);
          } catch (...) {
          }
          return std::to_string(n + 1);
        });
        print_result(result);
        if (!result.committed) failures++;
      } else {
        std::cout << "unknown command '" << cmd << "' (try 'help')\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
      failures++;
    }
  }
  return failures;
}

constexpr const char* kDemoScript = R"(# built-in self-check
get k00000001
put k00000001 hello
get k00000001 k00000002 k00000003
txn r:k00000002 w:k00000002=updated w:k00000004=new
get k00000002
incr counter0
incr counter0
get counter0
stats
quit
)";

}  // namespace

int main(int argc, char** argv) {
  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";
  if (demo) {
    std::istringstream script((std::string(kDemoScript)));
    return run_shell(script, /*echo=*/true);
  }
  return run_shell(std::cin, /*echo=*/false);
}
