// Speculative client-side caching — the web-service-chain scenario from the
// paper's Discussion (§7): "web applications often execute a chain of
// services to generate a response ... these applications can use caches to
// predict service results, enabling services in the chain to execute in
// parallel."
//
// A front-end assembles a page from three dependent services (session ->
// profile -> recommendations). Each service takes a while; the front-end
// keeps a small cache of previous answers and uses cached values as
// client-side predictions. Hits collapse the chain to roughly one service
// time; misses cost nothing beyond the sequential baseline (§3.3 forward
// progress). A rollback hook shows how a speculative side-table is undone.
#include <iostream>
#include <map>
#include <mutex>

#include "specrpc/engine.h"
#include "transport/sim_network.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

constexpr auto kServiceTime = std::chrono::milliseconds(25);

/// A tiny thread-safe prediction cache: method+arg -> last seen result.
class PredictionCache {
 public:
  ValueList predict(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) return {};
    return {it->second};
  }
  void learn(const std::string& key, Value v) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[key] = std::move(v);
  }

 private:
  std::mutex mu_;
  std::map<std::string, Value> cache_;
};

void register_services(SpecEngine& backend) {
  auto slow_echo = [](const char* tag) {
    return Handler([tag](const ServerCallPtr& call) {
      call->finish_after(
          kServiceTime,
          Value(std::string(tag) + "(" + call->args().at(0).as_string() +
                ")"));
    });
  };
  backend.register_method("session", slow_echo("sess"));
  backend.register_method("profile", slow_echo("prof"));
  backend.register_method("recommend", slow_echo("recs"));
}

struct Page {
  std::string content;
  double latency_ms = 0;
};

Page render_page(SpecEngine& client, PredictionCache& cache,
                 const std::string& user) {
  const auto t0 = Clock::now();
  // recommend(profile(session(user))) as a speculative chain; every level
  // consults the cache for its prediction and learns the actual value.
  auto recommend_cb = [&cache]() -> CallbackFn {
    return [&cache](SpecContext& ctx, const Value& recs) -> CallbackResult {
      return recs;
    };
  };
  auto profile_cb = [&cache, recommend_cb]() -> CallbackFn {
    return [&cache, recommend_cb](SpecContext& ctx,
                                  const Value& profile) -> CallbackResult {
      cache.learn("profile", profile);
      return ctx.call("backend", "recommend", {profile},
                      cache.predict("recommend:" + profile.as_string()),
                      recommend_cb);
    };
  };
  auto session_cb = [&cache, profile_cb]() -> CallbackFn {
    return [&cache, profile_cb](SpecContext& ctx,
                                const Value& session) -> CallbackResult {
      // Example of a speculative side-table + rollback (§3.5.2): note the
      // session in a log, undo the note if this branch was mis-speculated.
      cache.learn("last_session", session);
      ctx.set_rollback([&cache] { cache.learn("last_session", Value()); });
      return ctx.call("backend", "profile", {session},
                      cache.predict("profile:" + session.as_string()),
                      profile_cb);
    };
  };

  auto future = client.call("backend", "session", make_args(user),
                            cache.predict("session:" + user), session_cb);
  const Value recs = future->get();
  // Learn actual values for next time (futures only deliver actuals).
  cache.learn("session:" + user, Value("sess(" + user + ")"));
  cache.learn("profile:sess(" + user + ")",
              Value("prof(sess(" + user + "))"));
  cache.learn("recommend:prof(sess(" + user + "))", recs);
  Page page;
  page.content = recs.as_string();
  page.latency_ms = to_ms(Clock::now() - t0);
  return page;
}

}  // namespace

int main() {
  SimNetwork net;
  SpecEngine backend(net.add_node("backend"), net.executor(), net.wheel());
  SpecEngine frontend(net.add_node("frontend"), net.executor(), net.wheel());
  register_services(backend);
  PredictionCache cache;

  std::cout << "3-service chain, " << to_ms(kServiceTime)
            << " ms per service\n";
  Page cold = render_page(frontend, cache, "alice");
  std::cout << "cold cache:  " << cold.latency_ms << " ms -> "
            << cold.content << "\n";
  Page warm = render_page(frontend, cache, "alice");
  std::cout << "warm cache:  " << warm.latency_ms << " ms -> "
            << warm.content << "\n";

  const auto stats = frontend.stats();
  std::cout << "predictions correct/made: " << stats.predictions_correct
            << "/" << stats.predictions_made
            << ", rollbacks: " << stats.rollbacks_run << "\n";

  frontend.begin_shutdown();
  backend.begin_shutdown();
  // Warm run must be substantially faster than 3 sequential service times.
  return warm.latency_ms < cold.latency_ms ? 0 : 1;
}
