// Speculative client-side caching — the web-service-chain scenario from the
// paper's Discussion (§7): "web applications often execute a chain of
// services to generate a response ... these applications can use caches to
// predict service results, enabling services in the chain to execute in
// parallel."
//
// A front-end assembles a page from three dependent services (session ->
// profile -> recommendations). Each service takes a while; the front-end
// installs a TTL-bounded CachePredictor (src/predict) into its engine, so
// every call in the chain is predicted from the last seen answer and the
// actual results are learned back automatically — no per-call cache plumbing
// in the application code. Hits collapse the chain to roughly one service
// time; misses cost nothing beyond the sequential baseline (§3.3 forward
// progress). A rollback hook shows how a speculative side-table is undone.
#include <iostream>
#include <mutex>
#include <string>

#include "predict/manager.h"
#include "predict/predictor.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

constexpr auto kServiceTime = std::chrono::milliseconds(25);

void register_services(SpecEngine& backend) {
  auto slow_echo = [](const char* tag) {
    return Handler([tag](const ServerCallPtr& call) {
      call->finish_after(
          kServiceTime,
          Value(std::string(tag) + "(" + call->args().at(0).as_string() +
                ")"));
    });
  };
  backend.register_method("session", slow_echo("sess"));
  backend.register_method("profile", slow_echo("prof"));
  backend.register_method("recommend", slow_echo("recs"));
}

/// Speculative side-table for the rollback demo (§3.5.2): callbacks note
/// the session they saw; a mis-speculated branch undoes its note.
struct SessionLog {
  std::mutex mu;
  std::string last;

  void note(std::string session) {
    std::lock_guard<std::mutex> lock(mu);
    last = std::move(session);
  }
};

struct Page {
  std::string content;
  double latency_ms = 0;
};

Page render_page(SpecEngine& client, SessionLog& log,
                 const std::string& user) {
  const auto t0 = Clock::now();
  // recommend(profile(session(user))) as a speculative chain. Predictions
  // are not passed inline: each call leaves them empty and the engine asks
  // the installed CachePredictor (and learns each actual back into it).
  auto recommend_cb = []() -> CallbackFn {
    return [](SpecContext&, const Value& recs) -> CallbackResult {
      return recs;
    };
  };
  auto profile_cb = [recommend_cb]() -> CallbackFn {
    return [recommend_cb](SpecContext& ctx,
                          const Value& profile) -> CallbackResult {
      return ctx.call("backend", "recommend", {profile}, {}, recommend_cb);
    };
  };
  auto session_cb = [&log, profile_cb]() -> CallbackFn {
    return [&log, profile_cb](SpecContext& ctx,
                              const Value& session) -> CallbackResult {
      // Note the session in a side-table, undo if this branch turns out to
      // be mis-speculated.
      log.note(session.as_string());
      ctx.set_rollback([&log] { log.note(""); });
      return ctx.call("backend", "profile", {session}, {}, profile_cb);
    };
  };

  auto future = client.call("backend", "session", make_args(user), {},
                            session_cb);
  const Value recs = future->get();
  Page page;
  page.content = recs.as_string();
  page.latency_ms = to_ms(Clock::now() - t0);
  return page;
}

}  // namespace

int main() {
  SimNetwork net;
  SpecEngine backend(net.add_node("backend"), net.executor(), net.wheel());
  register_services(backend);

  // The whole cache wiring: pick a predictor, install the manager into the
  // client engine's config (docs/ADOPTING.md "choosing a predictor").
  predict::PredictorConfig predictor_config;
  predictor_config.ttl = std::chrono::seconds(60);
  predict::SpeculationManager manager(
      predict::make_predictor(predict::Kind::kCache, predictor_config));
  SpecConfig frontend_config;
  manager.install(frontend_config);
  SpecEngine frontend(net.add_node("frontend"), net.executor(), net.wheel(),
                      frontend_config);
  SessionLog log;

  std::cout << "3-service chain, " << to_ms(kServiceTime)
            << " ms per service\n";
  Page cold = render_page(frontend, log, "alice");
  std::cout << "cold cache:  " << cold.latency_ms << " ms -> "
            << cold.content << "\n";
  Page warm = render_page(frontend, log, "alice");
  std::cout << "warm cache:  " << warm.latency_ms << " ms -> "
            << warm.content << "\n";

  const auto stats = frontend.stats();
  const auto mgr = manager.stats();
  std::cout << "predictions correct/made: " << stats.predictions_correct
            << "/" << stats.predictions_made
            << ", rollbacks: " << stats.rollbacks_run
            << ", cached entries: " << manager.predictor().size()
            << ", learned: " << mgr.learned << "\n";

  frontend.begin_shutdown();
  backend.begin_shutdown();
  // Warm run must be substantially faster than 3 sequential service times.
  return warm.latency_ms < cold.latency_ms ? 0 : 1;
}
