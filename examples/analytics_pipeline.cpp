// Analytics pipeline — the paper's Figure 3 multi-level speculation example.
//
// Three parties:
//   * Data Server (DS)      — getPH: the user's purchase history. DS is not
//     the primary replica, so a linearizable read needs synchronization
//     (slow), but DS can speculatively return its local copy immediately.
//   * Analysis Server (AS)  — getPI: computes purchasing interests from the
//     PH it fetches from DS; speculatively returns a PI computed from the
//     predicted PH. getAI: aggregate info for a userbase; returns a cached
//     approximation as a server-side prediction while computing for real.
//   * Client                — getPI -> getAI -> comp, all overlapped.
//
// With correct predictions, the client-side `comp` runs while getPH's
// synchronization and getAI's real computation are still in flight — the
// multi-level speculation of §2.2 (comp depends on two predictions).
#include <iostream>

#include "specrpc/engine.h"
#include "transport/sim_network.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

constexpr auto kSyncDelay = std::chrono::milliseconds(60);   // DS sync
constexpr auto kAiCompute = std::chrono::milliseconds(80);   // AS real AI

void register_data_server(SpecEngine& ds) {
  ds.register_method("getPH", Handler([](const ServerCallPtr& call) {
    const std::string user = call->args().at(0).as_string();
    const std::string local_copy = "ph(" + user + ")";
    // Speculative response from local data (§2.2: "DS can send a speculative
    // response using its local data"), actual once synchronized.
    call->spec_return(Value(local_copy));
    call->finish_after(kSyncDelay, Value(local_copy));
  }));
}

void register_analysis_server(SpecEngine& as) {
  as.register_method("getPI", Handler([](const ServerCallPtr& call) {
    const std::string user = call->args().at(0).as_string();
    // AS consumes getPH speculatively; its finish() from the speculative
    // callback automatically becomes a predicted response to the client,
    // upgraded to the actual response when PH resolves (Figure 3b, 5 & 9).
    auto factory = [call]() -> CallbackFn {
      return [call](SpecContext&, const Value& ph) -> CallbackResult {
        const Value pi("pi[" + ph.as_string() + "]");
        call->finish(pi);
        return pi;
      };
    };
    call->call("ds", "getPH", make_args(user), {}, factory);
  }));

  as.register_method("getAI", Handler([](const ServerCallPtr& call) {
    const std::string pi = call->args().at(0).as_string();
    // Cached response for a related userbase as the prediction...
    call->spec_return(Value("ai{" + pi + "}"));
    // ...while the real aggregate is generated.
    call->finish_after(kAiCompute, Value("ai{" + pi + "}"));
  }));
}

}  // namespace

int main() {
  SimNetwork net;
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  SpecEngine analysis(net.add_node("as"), net.executor(), net.wheel());
  SpecEngine data(net.add_node("ds"), net.executor(), net.wheel());
  register_data_server(data);
  register_analysis_server(analysis);

  const auto t0 = Clock::now();

  // Client chain: getPI -> getAI -> comp.
  auto get_ai_cb = []() -> CallbackFn {
    return [](SpecContext& ctx, const Value& ai) -> CallbackResult {
      // `comp`: the client's local computation, speculatively executed while
      // getPH and getAI are still running (Figure 3b step 7).
      const std::string purchase_decision =
          "buy-if[" + ai.as_string() + "]";
      // comp would have side effects (placing an order): wait until this
      // branch is provably non-speculative.
      ctx.spec_block();
      return Value(purchase_decision);
    };
  };
  auto get_pi_cb = [&get_ai_cb]() -> CallbackFn {
    return [&get_ai_cb](SpecContext& ctx, const Value& pi) -> CallbackResult {
      return ctx.call("as", "getAI", make_args(pi.as_string()), {},
                      get_ai_cb);
    };
  };

  auto future = client.call("as", "getPI", make_args("alice"), {}, get_pi_cb);
  const Value decision = future->get();
  const double elapsed = to_ms(Clock::now() - t0);

  std::cout << "decision: " << decision.to_string() << "\n";
  std::cout << "elapsed: " << elapsed << " ms (sequential would be ~"
            << to_ms(kSyncDelay + kAiCompute) << "+ ms)\n";
  const auto stats = client.stats();
  std::cout << "client predictions correct: " << stats.predictions_correct
            << ", spec_blocks: " << stats.spec_blocks << "\n";

  client.begin_shutdown();
  analysis.begin_shutdown();
  data.begin_shutdown();
  // With both predictions correct, everything overlaps: the critical path is
  // max(sync, ai) + small network delays, not their sum.
  return elapsed < to_ms(kSyncDelay + kAiCompute) ? 0 : 1;
}
