// Quickstart — the paper's Figure 1 example, ported to the C++ API.
//
// A server exposes Math.plus; the client calls it with a client-side
// prediction (3 for plus(1,2)) and a callback (IncCB) that increments the
// result. The future delivers the non-speculative value 4.
//
// Run: ./quickstart            (in-process simulated network)
//      ./quickstart --tcp      (real TCP sockets on localhost)
#include <cstring>
#include <iostream>

#include "common/executor.h"
#include "common/timer_wheel.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"
#include "transport/tcp_transport.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

/// Figure 1 (a): the Math RPC host. A fresh handler per request is the
/// factory pattern that isolates concurrent speculations.
void register_math(SpecEngine& server) {
  server.register_method("plus", HandlerFactory([] {
    return Handler([](const ServerCallPtr& call) {
      const std::int64_t a = call->args().at(0).as_int();
      const std::int64_t b = call->args().at(1).as_int();
      call->finish(Value(a + b));
    });
  }));
}

/// Figure 1 (b): the IncCB callback factory.
CallbackFactory inc_cb_factory() {
  return []() -> CallbackFn {
    return [](SpecContext& ctx, const Value& rpc_result) -> CallbackResult {
      std::cout << "  [IncCB] runs with rpc result " << rpc_result.to_string()
                << (ctx.speculative() ? " (speculative)" : " (actual)")
                << "\n";
      return Value(rpc_result.as_int() + 1);
    };
  };
}

int run_with(SpecEngine& client, SpecEngine& server, const Address& srv) {
  register_math(server);

  std::cout << "Calling plus(1, 2) with client-side prediction 3...\n";
  auto future = client.call(srv, "plus", make_args(1, 2),
                            {Value(3)},  // predicted return value
                            inc_cb_factory());
  const Value result = future->get();  // blocks for the non-speculative result
  std::cout << "future.getResult() = " << result.to_string() << "\n";

  const auto stats = client.stats();
  std::cout << "predictions made/correct: " << stats.predictions_made << "/"
            << stats.predictions_correct << "\n";
  return result == Value(4) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool use_tcp = argc > 1 && std::strcmp(argv[1], "--tcp") == 0;
  if (use_tcp) {
    Executor executor(8, "quickstart");
    TimerWheel wheel;
    TcpTransport server_transport(executor);
    TcpTransport client_transport(executor);
    SpecEngine server(server_transport, executor, wheel);
    SpecEngine client(client_transport, executor, wheel);
    std::cout << "TCP mode: server at " << server_transport.address() << "\n";
    const int rc = run_with(client, server, server_transport.address());
    client.begin_shutdown();
    server.begin_shutdown();
    executor.shutdown();
    return rc;
  }
  SimNetwork net;
  SpecEngine server(net.add_node("server"), net.executor(), net.wheel());
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  const int rc = run_with(client, server, "server");
  client.begin_shutdown();
  server.begin_shutdown();
  return rc;
}
