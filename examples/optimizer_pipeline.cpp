// Multi-objective optimizer pipeline (paper §4.2).
//
// A series of dependent optimization problems (OPs) runs on a group of
// servers; the output of one OP feeds the next. Each server, while still
// optimizing, specReturns its *current best solution* — the prediction. If
// the optimizer has converged by hand-off time, the prediction is correct
// and the next stage's work overlapped with the rest of this stage's run.
//
// The simulated optimizer "converges" after a convergence deadline: the
// current best equals the final optimum iff hand-off happens after that
// point, mirroring the exponential-convergence assumption behind Figure 7.
// The example also prints the analytical model's prediction for the
// configuration so the two can be compared.
#include <iostream>

#include "common/rng.h"
#include "optmodel/model.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

using namespace srpc;        // NOLINT
using namespace srpc::spec;  // NOLINT

namespace {

constexpr int kStages = 4;
constexpr auto kStageTime = std::chrono::milliseconds(80);  // T
constexpr double kHandoffFraction = 0.6;                    // t / T
constexpr double kConvergedFraction = 0.5;  // converged by 0.5 T, so the
                                            // 0.6 T hand-off predicts right

void register_optimizer(SpecEngine& server, int stage) {
  server.register_method(
      "solve", Handler([stage](const ServerCallPtr& call) {
        const std::int64_t input = call->args().at(0).as_int();
        const std::int64_t optimum = input * 2 + stage;  // "the" solution
        // Current best at hand-off time: already optimal iff the optimizer
        // converged before the hand-off.
        const bool converged_at_handoff =
            kHandoffFraction >= kConvergedFraction;
        const std::int64_t current_best =
            converged_at_handoff ? optimum : optimum - 1;
        const auto handoff = std::chrono::duration_cast<Duration>(
            kStageTime * kHandoffFraction);
        // specReturn the current best at hand-off time...
        auto self = call;
        call->engine().wheel().schedule_after(handoff, [self, current_best] {
          try {
            self->spec_return(Value(current_best));
          } catch (const SpeculationAbandoned&) {
          }
        });
        // ...and the true optimum when the stage completes.
        call->finish_after(kStageTime, Value(optimum));
      }));
}

}  // namespace

int main() {
  SimNetwork net;
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  std::vector<std::unique_ptr<SpecEngine>> servers;
  for (int s = 0; s < kStages; ++s) {
    servers.push_back(std::make_unique<SpecEngine>(
        net.add_node("opt" + std::to_string(s)), net.executor(),
        net.wheel()));
    register_optimizer(*servers.back(), s);
  }

  // Chain: solve@opt0 -> solve@opt1 -> ... Each callback hands the (maybe
  // speculative) solution to the next stage.
  std::function<CallbackFactory(int)> stage_cb = [&](int next) {
    return [&, next]() -> CallbackFn {
      return [&, next](SpecContext& ctx, const Value& sol) -> CallbackResult {
        if (next >= kStages) return sol;
        return ctx.call("opt" + std::to_string(next), "solve",
                        make_args(sol.as_int()), {}, stage_cb(next + 1));
      };
    };
  };

  const auto t0 = Clock::now();
  auto future =
      client.call("opt0", "solve", make_args(10), {}, stage_cb(1));
  const Value solution = future->get();
  const double elapsed = to_ms(Clock::now() - t0);
  const double sequential = to_ms(kStageTime) * kStages;

  std::cout << "final solution: " << solution.to_string() << "\n";
  std::cout << "speculative pipeline: " << elapsed << " ms; sequential: ~"
            << sequential << " ms; measured speedup "
            << sequential / elapsed << "x\n";

  // What the §4.2 model says for this shape (P(t) step-function replaced by
  // the exponential family): with hand-off before convergence the paper's
  // model bounds what speculation can buy.
  for (double lambda : {1.0, 3.0, 9.0}) {
    std::cout << "model: lambda=" << lambda << " (unit 1/T), " << kStages
              << " stages -> max speedup "
              << opt::max_speedup(kStages, lambda) << "x at t*="
              << opt::optimal_handoff(lambda, 1.0) << " T\n";
  }

  client.begin_shutdown();
  for (auto& s : servers) s->begin_shutdown();
  return solution.is_null() ? 1 : 0;
}
