// Replicated Commit demo (paper §4.1/§5.2): a 3-datacentre geo-replicated
// transactional key-value store with Table 1's WAN round-trip times, run
// once with TradRPC (sequential quorum reads) and once with SpecRPC
// (speculative read chain), printing the latency difference for one
// read-heavy transaction.
#include <cstdio>
#include <iostream>

#include "common/env.h"
#include "rc/cluster.h"

using namespace srpc;      // NOLINT
using namespace srpc::rc;  // NOLINT

namespace {

TxnResult run_one(Flavor flavor, double scale) {
  ClusterConfig config;
  config.flavor = flavor;
  config.geo.scale = scale;  // Table 1 RTTs by default
  config.clients_per_dc = 1;
  config.num_keys = 10'000;
  RcCluster cluster(config);

  // A transaction with 6 dependent quorum reads and 2 buffered writes.
  std::vector<Op> ops;
  for (int i = 0; i < 6; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", 100 + i);
    ops.push_back(Op{true, key, {}});
  }
  ops.push_back(Op{false, "k00000100", "updated-by-demo"});
  ops.push_back(Op{false, "k00000101", "updated-by-demo"});

  auto& client = cluster.client(0, 0);  // a client in Oregon
  TxnResult result = client.run(ops);

  if (flavor == Flavor::kSpec) {
    const auto stats = cluster.spec_stats();
    std::cout << "  quorum calls: " << stats.quorum_calls_issued
              << ", predictions correct: " << stats.predictions_correct << "/"
              << stats.predictions_made
              << ", spec_blocks: " << stats.spec_blocks << "\n";
  }
  return result;
}

}  // namespace

int main() {
  const double scale = env_double("SPECRPC_LAT_SCALE", 0.25);
  std::cout << "Replicated Commit across Oregon/Ireland/Seoul (Table 1 RTTs"
            << ", scaled x" << scale << ")\n";
  std::cout << "Transaction: 6 dependent quorum reads + 2 writes\n\n";

  std::cout << "TradRPC (sequential dependent reads):\n";
  TxnResult trad = run_one(Flavor::kTrad, scale);
  std::cout << "  committed: " << (trad.committed ? "yes" : "no")
            << ", completion " << to_ms(trad.total) << " ms (commit phase "
            << to_ms(trad.commit_phase) << " ms)\n\n";

  std::cout << "SpecRPC (speculative read chain):\n";
  TxnResult spec = run_one(Flavor::kSpec, scale);
  std::cout << "  committed: " << (spec.committed ? "yes" : "no")
            << ", completion " << to_ms(spec.total) << " ms (commit phase "
            << to_ms(spec.commit_phase) << " ms)\n\n";

  const double reduction =
      100.0 * (1.0 - to_ms(spec.total) / to_ms(trad.total));
  std::cout << "completion time reduction: " << reduction << "%\n";
  return (trad.committed && spec.committed && spec.total < trad.total) ? 0 : 1;
}
